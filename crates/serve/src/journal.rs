//! Bounded in-memory span journal and the fleet-wide timeline merger.
//!
//! Each tier (the gateway and every shard daemon) owns a [`Journal`]: a
//! bounded ring of [`SpanRecord`]s pushed for requests that carry
//! `options.trace_ctx`. The `journal` op drains it; nothing is written
//! for untraced requests, so the journal costs nothing on the default
//! path. [`merge_chrome_trace`] then folds the drained journals of a
//! gateway plus its shards into one Chrome-trace JSON document
//! (`chrome://tracing` / Perfetto): one lane for the gateway, a service
//! and a worker lane per shard, engine phases nested inside the worker's
//! compute span.
//!
//! Span timestamps are per-tier monotonic offsets (µs since that tier
//! received the request), so no cross-process clock sync is assumed. The
//! merger aligns tiers structurally: a shard's root `request` span is
//! nested strictly inside the gateway's `backend` span for the same
//! trace id (and compressed proportionally in the rare case the shard
//! reports more time than the gateway observed around it).

use std::collections::VecDeque;
use std::sync::Mutex;

use serde::Serialize;

use crate::protocol::SpanRecord;

/// Spans kept per tier before the oldest are dropped. Roughly 500 traced
/// requests at the ~8 spans a schedule request records.
pub const JOURNAL_CAPACITY: usize = 4096;

/// Bounded ring of completed spans, drained by the `journal` op.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    spans: Mutex<VecDeque<SpanRecord>>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new(JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// A journal bounded to `capacity` spans (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
        }
    }

    /// Append one span, evicting the oldest if the journal is full.
    pub fn push(&self, span: SpanRecord) {
        let mut q = self.spans.lock().unwrap();
        if q.len() >= self.capacity {
            q.pop_front();
        }
        q.push_back(span);
    }

    /// Append several spans in order.
    pub fn extend(&self, spans: impl IntoIterator<Item = SpanRecord>) {
        for s in spans {
            self.push(s);
        }
    }

    /// Take every recorded span, leaving the journal empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().drain(..).collect()
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Whether the journal holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Serialize)]
struct NameArgs {
    name: String,
}

#[derive(Serialize)]
struct MetaEvent {
    name: String,
    ph: String,
    pid: u32,
    tid: u32,
    args: NameArgs,
}

#[derive(Serialize)]
struct SpanArgs {
    trace_id: String,
    #[serde(skip_serializing_if = "String::is_empty")]
    detail: String,
}

#[derive(Serialize)]
struct SpanEvent {
    name: String,
    cat: String,
    ph: String,
    pid: u32,
    tid: u32,
    ts: f64,
    dur: f64,
    args: SpanArgs,
}

fn meta(name: &str, pid: u32, tid: u32, value: String) -> MetaEvent {
    MetaEvent {
        name: name.to_string(),
        ph: "M".to_string(),
        pid,
        tid,
        args: NameArgs { name: value },
    }
}

/// Which lane a shard-side span renders on: service bookkeeping (tid 0)
/// or the worker path (queue wait, compute, nested engine phases; tid 1).
fn shard_tid(name: &str) -> u32 {
    if name == "queue" || name == "compute" || name.starts_with("engine:") {
        1
    } else {
        0
    }
}

/// Merge the drained journals of a gateway and its shards into one
/// Chrome-trace JSON document.
///
/// `gateway` is the gateway's journal (may be empty when the client
/// talked to a shard directly); `shards` pairs each shard's label (its
/// address, as the gateway routes to it) with that shard's drained
/// journal. Traces are laid out left to right in the order their spans
/// were recorded, separated by a gap; within a trace, shard spans nest
/// strictly inside the gateway `backend` span whose detail names the
/// shard.
pub fn merge_chrome_trace(gateway: &[SpanRecord], shards: &[(String, Vec<SpanRecord>)]) -> String {
    fn json<T: Serialize>(v: &T) -> String {
        serde_json::to_string(v).expect("span events serialize infallibly")
    }

    // Trace ids in first-recorded order: gateway first, then shard-only.
    let mut order: Vec<&str> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for s in gateway.iter() {
        if seen.insert(s.trace_id.as_str()) {
            order.push(&s.trace_id);
        }
    }
    for (_, spans) in shards {
        for s in spans {
            if seen.insert(s.trace_id.as_str()) {
                order.push(&s.trace_id);
            }
        }
    }

    let mut events: Vec<String> = Vec::new();
    events.push(json(&meta("process_name", 0, 0, "gateway".to_string())));
    events.push(json(&meta("thread_name", 0, 0, "requests".to_string())));
    for (i, (label, _)) in shards.iter().enumerate() {
        let pid = 1 + i as u32;
        events.push(json(&meta(
            "process_name",
            pid,
            0,
            format!("shard {label}"),
        )));
        events.push(json(&meta("thread_name", pid, 0, "service".to_string())));
        events.push(json(&meta("thread_name", pid, 1, "worker".to_string())));
    }

    const TRACE_GAP_US: u64 = 1_000;
    let mut spans: Vec<SpanEvent> = Vec::new();
    let mut cursor: u64 = 0;
    for trace_id in order {
        let gw: Vec<&SpanRecord> = gateway.iter().filter(|s| s.trace_id == trace_id).collect();
        let base = cursor;
        let mut trace_end = base;
        for s in &gw {
            let ts = base + s.start_us;
            trace_end = trace_end.max(ts + s.dur_us);
            spans.push(SpanEvent {
                name: s.name.clone(),
                cat: "gateway".to_string(),
                ph: "X".to_string(),
                pid: 0,
                tid: 0,
                ts: ts as f64,
                dur: (s.dur_us.max(1)) as f64,
                args: SpanArgs {
                    trace_id: trace_id.to_string(),
                    detail: s.detail.clone(),
                },
            });
        }
        for (i, (label, shard_spans)) in shards.iter().enumerate() {
            let mine: Vec<&SpanRecord> = shard_spans
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .collect();
            if mine.is_empty() {
                continue;
            }
            // Anchor inside the gateway backend span that names this
            // shard (fall back to any backend span, then to the trace
            // base for gateway-less traces).
            let anchor = gw
                .iter()
                .find(|s| s.name == "backend" && s.detail.contains(label.as_str()))
                .or_else(|| gw.iter().find(|s| s.name == "backend"))
                .copied();
            let root_dur = mine
                .iter()
                .find(|s| s.name == "request")
                .map_or_else(
                    || {
                        mine.iter()
                            .map(|s| s.start_us + s.dur_us)
                            .max()
                            .unwrap_or(1)
                    },
                    |s| s.dur_us,
                )
                .max(1);
            let (shard_base, scale) = match anchor {
                Some(b) => {
                    // Nest strictly: start 1µs into the backend span and
                    // compress if the shard reports more time than the
                    // gateway observed around its round trip.
                    let room = b.dur_us.saturating_sub(2).max(1);
                    let scale = if root_dur > room {
                        room as f64 / root_dur as f64
                    } else {
                        1.0
                    };
                    (base + b.start_us + 1, scale)
                }
                None => (base, 1.0),
            };
            for s in &mine {
                let ts = shard_base + (s.start_us as f64 * scale) as u64;
                let dur = ((s.dur_us as f64 * scale) as u64).max(1);
                trace_end = trace_end.max(ts + dur);
                spans.push(SpanEvent {
                    name: s.name.clone(),
                    cat: "shard".to_string(),
                    ph: "X".to_string(),
                    pid: 1 + i as u32,
                    tid: shard_tid(&s.name),
                    ts: ts as f64,
                    dur: dur as f64,
                    args: SpanArgs {
                        trace_id: trace_id.to_string(),
                        detail: s.detail.clone(),
                    },
                });
            }
        }
        cursor = trace_end + TRACE_GAP_US;
    }

    spans.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(b.dur.total_cmp(&a.dur)));
    events.extend(spans.iter().map(json));
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: &str, name: &str, start_us: u64, dur_us: u64, detail: &str) -> SpanRecord {
        SpanRecord {
            trace_id: trace_id.into(),
            name: name.into(),
            start_us,
            dur_us,
            detail: detail.into(),
        }
    }

    #[test]
    fn journal_is_bounded_and_drains_in_order() {
        let j = Journal::new(3);
        for i in 0..5u64 {
            j.push(span("t", "request", i, 1, ""));
        }
        assert_eq!(j.len(), 3);
        let drained = j.drain();
        assert_eq!(
            drained.iter().map(|s| s.start_us).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest spans evicted first"
        );
        assert!(j.is_empty());
    }

    #[test]
    fn merge_nests_shard_inside_gateway_backend_span() {
        let gw = vec![
            span("aa", "request", 0, 1000, ""),
            span("aa", "admission", 0, 50, ""),
            span("aa", "backend", 100, 800, "127.0.0.1:9001"),
        ];
        let shard = vec![
            span("aa", "request", 0, 600, ""),
            span("aa", "queue", 10, 40, ""),
            span("aa", "compute", 50, 500, ""),
            span("aa", "engine:rank", 60, 100, ""),
        ];
        let doc = merge_chrome_trace(&gw, &[("127.0.0.1:9001".to_string(), shard)]);
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let find = |pid: u64, name: &str| -> (f64, f64) {
            let e = events
                .iter()
                .find(|e| {
                    e["ph"].as_str() == Some("X")
                        && e["pid"].as_u64() == Some(pid)
                        && e["name"].as_str() == Some(name)
                })
                .unwrap_or_else(|| panic!("missing {name} on pid {pid}"));
            (e["ts"].as_f64().unwrap(), e["dur"].as_f64().unwrap())
        };
        let (gw_ts, gw_dur) = find(0, "request");
        let (be_ts, be_dur) = find(0, "backend");
        let (sh_ts, sh_dur) = find(1, "request");
        let (cp_ts, cp_dur) = find(1, "compute");
        let (en_ts, en_dur) = find(1, "engine:rank");
        // strict containment down the tree
        assert!(gw_ts <= be_ts && be_ts + be_dur <= gw_ts + gw_dur);
        assert!(be_ts < sh_ts && sh_ts + sh_dur < be_ts + be_dur);
        assert!(sh_ts <= cp_ts && cp_ts + cp_dur <= sh_ts + sh_dur);
        assert!(cp_ts <= en_ts && en_ts + en_dur <= cp_ts + cp_dur);
        // worker-path spans render on the worker lane
        let compute = events
            .iter()
            .find(|e| e["name"].as_str() == Some("compute"))
            .unwrap();
        assert_eq!(compute["tid"].as_u64(), Some(1));
        // lanes are named
        assert!(doc.contains("\"gateway\""), "{doc}");
        assert!(doc.contains("shard 127.0.0.1:9001"), "{doc}");
    }

    #[test]
    fn merge_compresses_shard_spans_wider_than_the_backend_window() {
        let gw = vec![
            span("bb", "request", 0, 500, ""),
            span("bb", "backend", 100, 200, "s1"),
        ];
        // shard claims 600µs inside a 200µs backend window (clock skew)
        let shard = vec![
            span("bb", "request", 0, 600, ""),
            span("bb", "compute", 0, 600, ""),
        ];
        let doc = merge_chrome_trace(&gw, &[("s1".to_string(), shard)]);
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        let be = events
            .iter()
            .find(|e| e["name"].as_str() == Some("backend"))
            .unwrap();
        let sh = events
            .iter()
            .find(|e| e["pid"].as_u64() == Some(1) && e["name"].as_str() == Some("request"))
            .unwrap();
        let (be_ts, be_dur) = (be["ts"].as_f64().unwrap(), be["dur"].as_f64().unwrap());
        let (sh_ts, sh_dur) = (sh["ts"].as_f64().unwrap(), sh["dur"].as_f64().unwrap());
        assert!(
            be_ts < sh_ts && sh_ts + sh_dur < be_ts + be_dur,
            "compressed to fit"
        );
    }

    #[test]
    fn merge_lays_multiple_traces_out_sequentially() {
        let gw = vec![
            span("t1", "request", 0, 100, ""),
            span("t2", "request", 0, 100, ""),
        ];
        let doc = merge_chrome_trace(&gw, &[]);
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let ts: Vec<f64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .map(|e| e["ts"].as_f64().unwrap())
            .collect();
        assert_eq!(ts.len(), 2);
        assert!(ts[1] >= ts[0] + 100.0, "traces do not overlap: {ts:?}");
    }

    #[test]
    fn shard_only_traces_merge_without_a_gateway() {
        let shard = vec![
            span("cc", "request", 0, 300, ""),
            span("cc", "compute", 10, 200, ""),
        ];
        let doc = merge_chrome_trace(&[], &[("s1".to_string(), shard)]);
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let xs = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .count();
        assert_eq!(xs, 2);
    }
}
