//! Transport layer: the TCP accept loop and the stdin runner.
//!
//! Both transports speak the same NDJSON protocol and share one
//! [`Service`]. The TCP listener runs non-blocking and polls the shutdown
//! flag between accepts; each connection gets its own thread with a short
//! read timeout so it also notices shutdown promptly. A `shutdown` request
//! from any client therefore winds the whole daemon down: accept loop
//! exits, connection threads finish their buffered lines and join, and the
//! worker pool drains.

use std::io::{self, BufRead, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::ServiceMetrics;
use crate::service::{ServeConfig, Service};

/// How often idle loops poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Read timeout on connection sockets; bounds shutdown latency per
/// connection.
const READ_TIMEOUT: Duration = Duration::from_millis(200);

/// A TCP daemon bound to an address, ready to [`run`](TcpServer::run).
pub struct TcpServer {
    listener: TcpListener,
    service: Arc<Service>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the worker pool.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpServer {
            listener,
            service: Arc::new(Service::start(config)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared handle to the underlying service (stats, programmatic
    /// shutdown).
    pub fn service(&self) -> Arc<Service> {
        self.service.clone()
    }

    /// Accept and serve connections until a `shutdown` request arrives (or
    /// [`Service::begin_shutdown`] is called on the shared handle), then
    /// drain: join every connection thread and the worker pool before
    /// returning.
    pub fn run(self) -> io::Result<()> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if self.service.is_shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = self.service.clone();
                    let handle = std::thread::Builder::new()
                        .name("hetsched-conn".to_string())
                        .spawn(move || serve_connection(stream, &service))
                        .expect("spawning connection thread");
                    connections.push(handle);
                    reap_finished(&mut connections, self.service.metrics());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    self.service.shutdown();
                    return Err(e);
                }
            }
        }
        join_all(connections, self.service.metrics());
        self.service.shutdown();
        Ok(())
    }
}

/// Join every finished connection thread, keeping the live ones. A bare
/// `retain(|h| !h.is_finished())` would drop finished handles without
/// joining them, silently discarding any panic they died with; joining
/// surfaces the panic and counts it.
fn reap_finished(connections: &mut Vec<JoinHandle<()>>, metrics: &ServiceMetrics) {
    let mut i = 0;
    while i < connections.len() {
        if connections[i].is_finished() {
            let handle = connections.swap_remove(i);
            if handle.join().is_err() {
                ServiceMetrics::bump(&metrics.connection_panics);
            }
        } else {
            i += 1;
        }
    }
}

/// Join every connection thread (finished or not), counting panics.
fn join_all(connections: Vec<JoinHandle<()>>, metrics: &ServiceMetrics) {
    for handle in connections {
        if handle.join().is_err() {
            ServiceMetrics::bump(&metrics.connection_panics);
        }
    }
}

/// Serve one TCP connection: buffer bytes, answer each complete line,
/// leave when the peer hangs up or the service shuts down.
///
/// The per-line path is allocation-free at steady state: lines are
/// scanned **in place** inside the persistent read buffer (drained only
/// after the reply is produced), replies arrive as shared `Arc` bytes
/// from [`Service::handle_line_bytes`], and one reusable scratch buffer
/// assembles `reply + '\n'` for a single `write_all`.
fn serve_connection(stream: TcpStream, service: &Service) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Answer every complete line already buffered, even mid-shutdown:
        // drain-then-exit applies to connections too.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let reply = {
                let line = String::from_utf8_lossy(&pending[..pos]);
                let line = line.trim();
                if line.is_empty() {
                    None
                } else {
                    Some(service.handle_line_bytes(line))
                }
            };
            pending.drain(..=pos);
            if let Some(reply) = reply {
                if write_reply(&mut stream, &mut out, &reply).is_err() {
                    return;
                }
            }
        }
        if service.is_shutting_down() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Read timeout: loop around to re-check the shutdown flag.
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Assemble `reply + '\n'` in the caller's reusable scratch buffer and
/// write it in one call (one packet under `TCP_NODELAY`).
fn write_reply(w: &mut impl Write, scratch: &mut Vec<u8>, reply: &[u8]) -> io::Result<()> {
    scratch.clear();
    scratch.extend_from_slice(reply);
    scratch.push(b'\n');
    w.write_all(scratch)?;
    w.flush()
}

/// Serve NDJSON requests from `input` to `output` until EOF or a
/// `shutdown` request, then drain the worker pool. This is the stdin mode
/// of the daemon (`hetsched serve --stdin`), also handy for tests.
pub fn serve_lines(
    service: &Service,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let mut out: Vec<u8> = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = service.handle_line_bytes(line.trim());
        write_reply(&mut output, &mut out, &reply)?;
        if service.is_shutting_down() {
            break;
        }
    }
    service.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Cursor};

    fn small_request(weight: f64, options: &str) -> String {
        format!(
            "{{\"op\":\"schedule\",\"dag\":{{\"tasks\":[{{\"weight\":{weight}}},{{\"weight\":2.0}}],\
             \"edges\":[{{\"src\":0,\"dst\":1,\"data\":1.5}}]}},\
             \"system\":{{\"processors\":{{\"kind\":\"homogeneous\",\"count\":2}},\
             \"network\":{{\"topology\":\"fully_connected\",\"bandwidth\":1.0}}}},\
             \"algorithm\":\"HEFT\",\"options\":{options}}}"
        )
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            instance_cache_capacity: 8,
            default_deadline_ms: 10_000,
        }
    }

    #[test]
    fn reaper_joins_finished_threads_and_counts_panics() {
        // Quiet the default panic hook for the deliberately-panicking
        // thread, then restore it.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let panicker = std::thread::spawn(|| panic!("connection thread died"));
        let clean = std::thread::spawn(|| {});
        while !panicker.is_finished() || !clean.is_finished() {
            std::thread::sleep(Duration::from_millis(2));
        }
        std::panic::set_hook(hook);

        let metrics = ServiceMetrics::new();
        let mut connections = vec![panicker, clean];
        reap_finished(&mut connections, &metrics);
        assert!(connections.is_empty(), "finished handles must be joined");
        assert_eq!(ServiceMetrics::read(&metrics.connection_panics), 1);

        // A still-running thread is left alone by the reaper and joined by
        // the final drain.
        let (tx, rx) = crossbeam::channel::bounded::<()>(1);
        let mut connections = vec![std::thread::spawn(move || {
            let _ = rx.recv();
        })];
        reap_finished(&mut connections, &metrics);
        assert_eq!(connections.len(), 1, "live handle must be kept");
        tx.send(()).unwrap();
        join_all(connections, &metrics);
        assert_eq!(ServiceMetrics::read(&metrics.connection_panics), 1);
    }

    #[test]
    fn stdin_mode_round_trips_and_stops_on_shutdown() {
        let service = Service::start(test_config());
        let input = format!(
            "{}\n\n{}\n{{\"op\":\"stats\"}}\n{{\"op\":\"shutdown\"}}\nignored after shutdown\n",
            small_request(1.0, "{}"),
            small_request(1.0, "{}"),
        );
        let mut out = Vec::new();
        serve_lines(&service, Cursor::new(input), &mut out).unwrap();
        let lines: Vec<String> = out.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 4, "lines: {lines:#?}");
        let first: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(first["status"].as_str(), Some("ok"));
        assert_eq!(first["schedule"]["cached"].as_bool(), Some(false));
        let second: serde_json::Value = serde_json::from_str(&lines[1]).unwrap();
        assert_eq!(second["schedule"]["cached"].as_bool(), Some(true));
        let stats: serde_json::Value = serde_json::from_str(&lines[2]).unwrap();
        assert_eq!(stats["stats"]["cache_hits"].as_u64(), Some(1));
        let bye: serde_json::Value = serde_json::from_str(&lines[3]).unwrap();
        assert_eq!(bye["status"].as_str(), Some("shutting_down"));
        assert!(service.is_shutting_down());
    }

    #[test]
    fn tcp_round_trip_and_client_initiated_shutdown() {
        let server = TcpServer::bind("127.0.0.1:0", test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        let daemon = std::thread::spawn(move || server.run());

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;

        let mut send = |line: &str, reader: &mut BufReader<TcpStream>| -> serde_json::Value {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            serde_json::from_str(reply.trim()).unwrap()
        };

        let v = send(&small_request(3.0, "{\"simulate\":true}"), &mut reader);
        assert_eq!(v["status"].as_str(), Some("ok"), "got {v:?}");
        assert_eq!(
            v["schedule"]["sim"]["matches_prediction"].as_bool(),
            Some(true)
        );
        let v = send(&small_request(3.0, "{\"simulate\":true}"), &mut reader);
        assert_eq!(v["schedule"]["cached"].as_bool(), Some(true));
        let v = send(r#"{"op":"stats"}"#, &mut reader);
        assert_eq!(v["stats"]["requests"].as_u64(), Some(2));
        let v = send(r#"{"op":"shutdown"}"#, &mut reader);
        assert_eq!(v["status"].as_str(), Some("shutting_down"));

        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn tcp_survives_malformed_lines_and_peer_disconnect() {
        let server = TcpServer::bind("127.0.0.1:0", test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        let service = server.service();
        let daemon = std::thread::spawn(move || server.run());

        {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            stream.write_all(b"garbage that is not json\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
            assert_eq!(v["status"].as_str(), Some("error"));
            // Drop mid-session: the daemon must shrug it off.
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream
            .write_all(format!("{}\n", small_request(4.0, "{}")).as_bytes())
            .unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"), "got {v:?}");

        service.begin_shutdown();
        daemon.join().unwrap().unwrap();
    }
}
