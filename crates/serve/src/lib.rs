//! `hetsched-serve` — a resident scheduling daemon.
//!
//! Turns the one-shot scheduling library into a long-lived service:
//! clients send newline-delimited JSON requests (`{"op": "schedule", dag,
//! system, algorithm, options}`) over TCP or stdin and get back the
//! schedule, its makespan/SLR/speedup, and optionally a zero-noise
//! simulator cross-check — without paying process start-up or re-parsing
//! costs per request.
//!
//! Module map:
//!
//! The crate is layered transport / routing / worker, so the scale-out
//! gateway (`hetsched-gateway`) can reuse the protocol and metrics pieces
//! while fronting many shard processes each running the full stack:
//!
//! | module        | layer     | contents |
//! |---------------|-----------|----------|
//! | [`protocol`]  | shared    | request/response types, NDJSON framing |
//! | [`transport`] | transport | TCP accept loop, connection reaper, stdin runner |
//! | [`service`]   | routing   | validation, bounded queue admission, deadlines, memoization |
//! | `worker`      | worker    | the pool threads: scheduling, panic isolation |
//! | [`wire`]      | transport | raw-byte request scanner for the hot-line reply cache |
//! | [`cache`]     | shared    | fingerprint-keyed LRU memoization cache |
//! | [`metrics`]   | shared    | atomic counters + streaming latency histogram |
//! | [`journal`]   | shared    | bounded span journal + fleet Chrome-trace merger |
//!
//! Guarantees the service makes:
//!
//! - **Backpressure, not collapse** — the request queue is bounded; a full
//!   queue answers `busy` immediately.
//! - **Deadlines** — each request waits at most `deadline_ms`; a late
//!   schedule still finishes and lands in the cache for retries.
//! - **Panic isolation** — a panicking scheduler yields an `error`
//!   response for that request only; the daemon keeps serving.
//! - **Deterministic memoization** — responses are keyed by a content
//!   fingerprint of (DAG + system + algorithm + options), so identical
//!   requests get byte-identical schedules, whether computed or cached.
//! - **Graceful shutdown** — `{"op": "shutdown"}` drains in-flight
//!   requests (replies included) before the daemon exits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod service;
pub mod transport;
pub mod wire;
mod worker;

pub use journal::{merge_chrome_trace, Journal};
pub use protocol::{
    GatewayTiming, HelloBody, Hop, JournalBody, PortfolioBody, PortfolioEntryBody, Request,
    RequestOptions, Response, ScheduleBody, ServeTiming, SimBody, SpanRecord, StatsBody,
    TimingBody, TraceCtx,
};
pub use service::{request_fingerprint, ServeConfig, Service};
pub use transport::{serve_lines, TcpServer};
