//! `hetsched-serve` — a resident scheduling daemon.
//!
//! Turns the one-shot scheduling library into a long-lived service:
//! clients send newline-delimited JSON requests (`{"op": "schedule", dag,
//! system, algorithm, options}`) over TCP or stdin and get back the
//! schedule, its makespan/SLR/speedup, and optionally a zero-noise
//! simulator cross-check — without paying process start-up or re-parsing
//! costs per request.
//!
//! Module map:
//!
//! | module       | contents |
//! |--------------|----------|
//! | [`protocol`] | request/response types, NDJSON framing |
//! | [`service`]  | worker pool, bounded queue, deadlines, memoization, panic isolation |
//! | [`cache`]    | fingerprint-keyed LRU memoization cache |
//! | [`metrics`]  | atomic counters + streaming latency histogram |
//! | [`server`]   | TCP accept loop and stdin runner |
//!
//! Guarantees the service makes:
//!
//! - **Backpressure, not collapse** — the request queue is bounded; a full
//!   queue answers `busy` immediately.
//! - **Deadlines** — each request waits at most `deadline_ms`; a late
//!   schedule still finishes and lands in the cache for retries.
//! - **Panic isolation** — a panicking scheduler yields an `error`
//!   response for that request only; the daemon keeps serving.
//! - **Deterministic memoization** — responses are keyed by a content
//!   fingerprint of (DAG + system + algorithm + options), so identical
//!   requests get byte-identical schedules, whether computed or cached.
//! - **Graceful shutdown** — `{"op": "shutdown"}` drains in-flight
//!   requests (replies included) before the daemon exits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;

pub use protocol::{
    PortfolioBody, PortfolioEntryBody, Request, RequestOptions, Response, ScheduleBody, SimBody,
    StatsBody,
};
pub use server::{serve_lines, TcpServer};
pub use service::{request_fingerprint, ServeConfig, Service};
