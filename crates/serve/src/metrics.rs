//! Service metrics: lock-free counters, streaming latency histograms
//! (global and per-algorithm), and a Prometheus text-exposition renderer.
//!
//! Counters are relaxed atomics — they are monotone event counts with no
//! cross-counter invariants, so relaxed ordering is sufficient and a
//! `stats`/`metrics` read never blocks a request. Latencies go into a
//! fixed log₂-bucketed histogram (bucket upper bounds at successive
//! powers of two microseconds, *inclusive*, matching Prometheus `le`
//! semantics), from which quantiles are answered by bucket walk with
//! log-linear interpolation; recording is O(1), wait-free, and
//! allocation-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

const BUCKETS: usize = 64;

/// Streaming log-scale latency histogram over microseconds.
///
/// Bucket `i` counts samples in `(2^(i-1), 2^i]` µs (bucket 0: `[0, 1]`).
/// The *inclusive upper* boundary is deliberate: a sample landing exactly
/// on a power of two belongs to the bucket whose upper bound it equals,
/// exactly like a Prometheus `le="2^i"` bucket. (The previous
/// boundary-exclusive scheme pushed such samples one bucket up, and the
/// then-used geometric-midpoint quantile reported ≈ 1.41× the true value
/// for boundary-heavy workloads — above the true maximum.)
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a microsecond value: the bit length of `us - 1`,
    /// i.e. the smallest `i` with `us <= 2^i`.
    fn bucket_of(us: u64) -> usize {
        (u64::BITS - us.saturating_sub(1).leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`, microseconds.
    fn bucket_upper_us(i: usize) -> u64 {
        1u64 << i.min(63)
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(us).min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket snapshot: `(inclusive upper bound in µs,
    /// cumulative count)` for every bucket up to the highest non-empty one
    /// (empty histogram → empty vec). This is exactly the series a
    /// Prometheus `_bucket{le="..."}` family exposes (minus `+Inf`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            out.push((Self::bucket_upper_us(i), cum));
        }
        while matches!(out.last(), Some(&(_, c)) if out.len() > 1 && c == out[out.len() - 2].1) {
            out.pop();
        }
        if matches!(out.as_slice(), [(_, 0)]) {
            out.clear();
        }
        out
    }

    /// Quantile estimate in microseconds (`q ∈ [0, 1]`); returns 0 with no
    /// samples. The bucket holding the quantile rank is found by walk;
    /// within the bucket the estimate interpolates log-linearly between
    /// the bucket's bounds (linearly for bucket 0), so it never exceeds
    /// the bucket's inclusive upper bound — a spike of samples exactly on
    /// a power-of-two boundary yields an estimate `<=` that boundary,
    /// with equality when the rank falls on the last sample of the bucket.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if in_bucket > 0 && seen + in_bucket >= rank {
                let frac = (rank - seen) as f64 / in_bucket as f64;
                let hi = Self::bucket_upper_us(i) as f64;
                if i == 0 {
                    return frac * hi;
                }
                let lo = Self::bucket_upper_us(i - 1) as f64;
                return lo * (hi / lo).powf(frac);
            }
            seen += in_bucket;
        }
        // Unreachable with consistent counters; fall back to the max bound.
        Self::bucket_upper_us(BUCKETS - 1) as f64
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }
}

/// Request outcome classes used as the `status` label on latency
/// histograms and per-op outcome counters. `Success` covers `ok`
/// replies; `Shed` covers busy/shed rejections; `Timeout` covers
/// deadline expiries; `Error` covers everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// The request got an `ok` reply.
    Success,
    /// The request was turned away by admission control (`busy`/`shed`).
    Shed,
    /// The request's deadline passed before the reply was ready.
    Timeout,
    /// The request failed (bad input, panic, internal error).
    Error,
}

impl RequestStatus {
    /// Every status, in render order.
    pub const ALL: [RequestStatus; 4] = [
        RequestStatus::Success,
        RequestStatus::Shed,
        RequestStatus::Timeout,
        RequestStatus::Error,
    ];

    /// The `status` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestStatus::Success => "success",
            RequestStatus::Shed => "shed",
            RequestStatus::Timeout => "timeout",
            RequestStatus::Error => "error",
        }
    }

    fn index(self) -> usize {
        match self {
            RequestStatus::Success => 0,
            RequestStatus::Shed => 1,
            RequestStatus::Timeout => 2,
            RequestStatus::Error => 3,
        }
    }
}

/// One latency histogram per request outcome, rendered as a single
/// Prometheus family with a `status` label. Every status series is
/// rendered even when empty so scrapers (and CI greps) see a
/// deterministic set of series.
#[derive(Debug, Default)]
pub struct StatusLatency {
    by_status: [LatencyHistogram; 4],
}

impl StatusLatency {
    /// Fresh, empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample against an outcome.
    pub fn record(&self, status: RequestStatus, latency: Duration) {
        self.by_status[status.index()].record(latency);
    }

    /// The histogram for one outcome.
    pub fn get(&self, status: RequestStatus) -> &LatencyHistogram {
        &self.by_status[status.index()]
    }

    /// The success histogram (the series stats quantiles come from).
    pub fn success(&self) -> &LatencyHistogram {
        self.get(RequestStatus::Success)
    }

    /// Samples recorded across all outcomes.
    pub fn total_count(&self) -> u64 {
        self.by_status.iter().map(|h| h.count()).sum()
    }

    /// Render the whole family: HELP + TYPE, then one labeled series
    /// set per status.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for status in RequestStatus::ALL {
            render_histogram_series(
                out,
                name,
                &format!("status=\"{}\"", escape_label(status.as_str())),
                self.get(status),
            );
        }
    }
}

/// Operations distinguished by the per-op outcome counters.
pub const OUTCOME_OPS: [&str; 3] = ["schedule", "patch", "portfolio"];

/// Fixed matrix of `(op, status)` outcome counters rendered as
/// `{prefix}_op_outcomes_total{op="...",status="..."}`. Every cell is
/// always rendered so the exposition is deterministic.
#[derive(Debug, Default)]
pub struct OpOutcomes {
    cells: [[AtomicU64; 4]; 3],
}

impl OpOutcomes {
    fn op_index(op: &str) -> usize {
        OUTCOME_OPS.iter().position(|o| *o == op).unwrap_or(0)
    }

    /// Count one request outcome for an op (`schedule`/`patch`/
    /// `portfolio`; unknown ops count against `schedule`).
    pub fn bump(&self, op: &str, status: RequestStatus) {
        self.cells[Self::op_index(op)][status.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Read one cell.
    pub fn get(&self, op: &str, status: RequestStatus) -> u64 {
        self.cells[Self::op_index(op)][status.index()].load(Ordering::Relaxed)
    }

    /// Render the counter family under `name`.
    pub fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for (oi, op) in OUTCOME_OPS.iter().enumerate() {
            for status in RequestStatus::ALL {
                let v = self.cells[oi][status.index()].load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "{name}{{op=\"{}\",status=\"{}\"}} {v}",
                    escape_label(op),
                    escape_label(status.as_str()),
                );
            }
        }
    }
}

/// All service counters.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Schedule requests accepted for processing (hits + queued).
    pub requests: AtomicU64,
    /// Requests answered from the memoization cache.
    pub cache_hits: AtomicU64,
    /// Fresh schedules computed to completion.
    pub computed: AtomicU64,
    /// Error responses (bad input, unknown algorithm, worker panics).
    pub errors: AtomicU64,
    /// Worker panics caught (also counted in `errors`).
    pub panics: AtomicU64,
    /// Deadline expiries.
    pub timeouts: AtomicU64,
    /// Queue-full rejections.
    pub busy_rejections: AtomicU64,
    /// Connection threads that exited by panicking (joined by the
    /// transport's reaper).
    pub connection_panics: AtomicU64,
    /// Requests that reused a cached shared `ProblemInstance`.
    pub instance_cache_hits: AtomicU64,
    /// Requests that had to build a fresh `ProblemInstance`.
    pub instance_cache_misses: AtomicU64,
    /// `patch` requests accepted (parent found, deltas applied).
    pub patches: AtomicU64,
    /// Requests answered from the wire-level reply cache without parsing
    /// (a subset of `cache_hits`).
    pub wire_hits: AtomicU64,
    /// Scanned requests whose digest was not in the wire cache.
    pub wire_misses: AtomicU64,
    /// Requests the wire scanner refused (whitespace, escapes, traced,
    /// control ops) — the ordinary slow path.
    pub wire_fallbacks: AtomicU64,
    /// Schedules produced by incremental repair rather than from-scratch
    /// computation (a subset of `computed`).
    pub repairs: AtomicU64,
    /// End-to-end latency of finished requests, split by outcome
    /// (`status` label in the exposition).
    pub latency: StatusLatency,
    /// Per-op request outcomes (`hetsched_op_outcomes_total`).
    pub op_outcomes: OpOutcomes,
    /// Remaining deadline slack at completion for requests that carried
    /// a deadline and succeeded.
    pub deadline_slack: LatencyHistogram,
    /// Time jobs spent waiting in the bounded queue before a worker
    /// picked them up (computed jobs only — memo hits never queue).
    pub queue_wait: LatencyHistogram,
    /// Time workers spent inside the scheduling engine per computed job.
    pub compute: LatencyHistogram,
    /// Per-algorithm end-to-end latency (keyed by registry name). Kept in
    /// `Arc`s so recording takes the map lock only for the lookup.
    per_algorithm: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
}

/// Point-in-time gauge values owned by the service rather than the
/// counters, passed into [`ServiceMetrics::render_prometheus`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GaugeSnapshot {
    /// Jobs currently waiting in the bounded queue.
    pub queue_depth: u64,
    /// Entries currently in the memoization cache.
    pub cache_entries: u64,
    /// Entries currently in the problem-instance cache.
    pub instance_cache_entries: u64,
    /// Worker threads.
    pub workers: u64,
    /// Bounded queue capacity.
    pub queue_capacity: u64,
}

impl ServiceMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Record a completed request's latency against its algorithm (the
    /// global histogram is recorded separately by the request path).
    pub fn record_algorithm(&self, algorithm: &str, latency: Duration) {
        let hist = {
            let mut map = self.per_algorithm.lock();
            map.entry(algorithm.to_string())
                .or_insert_with(|| Arc::new(LatencyHistogram::new()))
                .clone()
        };
        hist.record(latency);
    }

    /// Snapshot of the per-algorithm histograms, sorted by name.
    pub fn algorithm_histograms(&self) -> Vec<(String, Arc<LatencyHistogram>)> {
        self.per_algorithm
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Render every metric family in the Prometheus text exposition
    /// format (version 0.0.4): monotone counters with a `_total` suffix,
    /// the service gauges from `g`, and the request-latency histograms
    /// (global, plus one labeled series set per algorithm) in seconds.
    pub fn render_prometheus(&self, g: &GaugeSnapshot) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        let requests = Self::read(&self.requests);
        let hits = Self::read(&self.cache_hits);
        counter(
            "hetsched_requests_total",
            "Schedule requests accepted for processing.",
            requests,
        );
        counter(
            "hetsched_cache_hits_total",
            "Requests answered from the memoization cache.",
            hits,
        );
        counter(
            "hetsched_cache_misses_total",
            "Accepted requests that missed the memoization cache.",
            requests.saturating_sub(hits),
        );
        counter(
            "hetsched_computed_total",
            "Fresh schedules computed to completion.",
            Self::read(&self.computed),
        );
        counter(
            "hetsched_errors_total",
            "Error responses (bad input, unknown algorithm, panics).",
            Self::read(&self.errors),
        );
        counter(
            "hetsched_panics_total",
            "Worker panics caught (also counted in errors).",
            Self::read(&self.panics),
        );
        counter(
            "hetsched_timeouts_total",
            "Requests that exceeded their deadline.",
            Self::read(&self.timeouts),
        );
        counter(
            "hetsched_busy_rejections_total",
            "Requests rejected because the bounded queue was full.",
            Self::read(&self.busy_rejections),
        );
        counter(
            "hetsched_connection_panics_total",
            "Connection threads that exited by panicking.",
            Self::read(&self.connection_panics),
        );
        counter(
            "hetsched_instance_cache_hits_total",
            "Requests that reused a cached shared problem instance.",
            Self::read(&self.instance_cache_hits),
        );
        counter(
            "hetsched_instance_cache_misses_total",
            "Requests that built a fresh problem instance.",
            Self::read(&self.instance_cache_misses),
        );
        counter(
            "hetsched_patches_total",
            "Patch requests accepted (parent found, deltas applied).",
            Self::read(&self.patches),
        );
        counter(
            "hetsched_repairs_total",
            "Schedules produced by incremental repair (subset of computed).",
            Self::read(&self.repairs),
        );
        counter(
            "hetsched_wire_hits_total",
            "Requests answered from the wire-level reply cache without parsing.",
            Self::read(&self.wire_hits),
        );
        counter(
            "hetsched_wire_misses_total",
            "Scanned requests whose digest missed the wire cache.",
            Self::read(&self.wire_misses),
        );
        counter(
            "hetsched_wire_fallbacks_total",
            "Requests the wire scanner refused (full-parse path).",
            Self::read(&self.wire_fallbacks),
        );

        let mut gauge = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "hetsched_queue_depth",
            "Jobs currently waiting in the bounded request queue.",
            g.queue_depth,
        );
        gauge(
            "hetsched_queue_capacity",
            "Bounded request queue capacity.",
            g.queue_capacity,
        );
        gauge(
            "hetsched_cache_entries",
            "Entries currently in the memoization cache.",
            g.cache_entries,
        );
        gauge(
            "hetsched_instance_cache_entries",
            "Entries currently in the problem-instance cache.",
            g.instance_cache_entries,
        );
        gauge("hetsched_workers", "Worker threads.", g.workers);

        self.latency.render(
            &mut out,
            "hetsched_request_latency_seconds",
            "End-to-end latency of finished requests, by outcome status.",
        );
        self.op_outcomes.render(
            &mut out,
            "hetsched_op_outcomes_total",
            "Request outcomes per operation and status.",
        );
        render_histogram(
            &mut out,
            "hetsched_deadline_slack_seconds",
            "Deadline slack remaining when a deadlined request succeeded.",
            "",
            &self.deadline_slack,
        );
        render_histogram(
            &mut out,
            "hetsched_queue_wait_seconds",
            "Queue wait before a worker picked up a computed job.",
            "",
            &self.queue_wait,
        );
        render_histogram(
            &mut out,
            "hetsched_compute_seconds",
            "Engine compute time per computed job.",
            "",
            &self.compute,
        );
        let per_alg = self.algorithm_histograms();
        if !per_alg.is_empty() {
            let name = "hetsched_algorithm_latency_seconds";
            let _ = writeln!(
                out,
                "# HELP {name} End-to-end latency of completed schedule requests, per algorithm."
            );
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (alg, hist) in &per_alg {
                render_histogram_series(
                    &mut out,
                    name,
                    &format!("algorithm=\"{}\"", escape_label(alg)),
                    hist,
                );
            }
        }
        out
    }
}

/// Escape a Prometheus label value (backslash, quote, newline).
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Write one full histogram family (HELP + TYPE + series).
pub fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &str,
    hist: &LatencyHistogram,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    render_histogram_series(out, name, labels, hist);
}

/// Write the `_bucket`/`_sum`/`_count` series of one histogram, with
/// `le` bounds converted from microseconds to seconds.
pub fn render_histogram_series(
    out: &mut String,
    name: &str,
    labels: &str,
    hist: &LatencyHistogram,
) {
    let sep = if labels.is_empty() { "" } else { "," };
    let count = hist.count();
    for (le_us, cum) in hist.cumulative_buckets() {
        let le = le_us as f64 / 1e6;
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {count}");
    let sum = hist.sum_us() as f64 / 1e6;
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {sum}");
        let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_upper_inclusive() {
        // bucket 0 is [0, 1]; bucket i is (2^(i-1), 2^i]
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(5), 3);
        // the boundary cases that used to misclassify: exact powers of two
        // belong to the bucket whose inclusive upper bound they equal
        for i in 1..=62usize {
            let v = 1u64 << i;
            assert_eq!(LatencyHistogram::bucket_of(v), i, "2^{i}");
            assert_eq!(LatencyHistogram::bucket_of(v + 1), i + 1, "2^{i}+1");
        }
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
    }

    #[test]
    fn boundary_spike_quantiles_never_exceed_true_value() {
        // Every sample exactly 1024µs: the old scheme put them in
        // [1024, 2048) and reported sqrt(1024·2048) ≈ 1448 — above the
        // true maximum. Now every quantile is ≤ 1024 and p100 is exact.
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Duration::from_micros(1024));
        }
        for q in [0.5, 0.9, 0.99] {
            let est = h.quantile_us(q);
            assert!(est <= 1024.0 + 1e-9, "q={q} est={est}");
            assert!(est > 512.0, "q={q} est={est}");
        }
        assert!((h.quantile_us(1.0) - 1024.0).abs() < 1e-9);
        assert!((h.mean_us() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = LatencyHistogram::new();
        // 100 samples at 100µs → bucket (64, 128]
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        let p50 = h.quantile_us(0.5);
        let p100 = h.quantile_us(1.0);
        assert!(p50 > 64.0 && p50 < 128.0, "p50 {p50}");
        assert!((p100 - 128.0).abs() < 1e-9, "p100 {p100}");
        // log-linear: p50 at frac 0.5 is the geometric midpoint 64·√2
        assert!((p50 - 64.0 * 2f64.sqrt()).abs() < 1e-9, "p50 {p50}");
    }

    #[test]
    fn quantiles_track_mass() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~100us), 10 slow (~100ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(100));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // p50 falls in the 100us bucket (64, 128], p99 in the 100ms bucket.
        assert!((64.0..=128.0).contains(&p50), "p50 {p50}");
        assert!(p99 > 64_000.0, "p99 {p99}");
        assert!(p50 < p99);
        let mean = h.mean_us();
        assert!((mean - (90.0 * 100.0 + 10.0 * 100_000.0) / 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_match_prometheus_semantics() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(1)); // bucket 0, le=1
        h.record(Duration::from_micros(2)); // bucket 1, le=2
        h.record(Duration::from_micros(100)); // bucket 7, le=128
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 8, "{buckets:?}");
        assert_eq!(buckets[0], (1, 1));
        assert_eq!(buckets[1], (2, 2));
        assert_eq!(buckets[6], (64, 2));
        assert_eq!(buckets[7], (128, 3));
        // cumulative counts are monotone
        for w in buckets.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(Duration::from_micros(t * 50 + i % 7));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn prometheus_rendering_contains_required_families() {
        let m = ServiceMetrics::new();
        ServiceMetrics::bump(&m.requests);
        ServiceMetrics::bump(&m.requests);
        ServiceMetrics::bump(&m.cache_hits);
        ServiceMetrics::bump(&m.instance_cache_misses);
        ServiceMetrics::bump(&m.wire_hits);
        ServiceMetrics::bump(&m.wire_misses);
        ServiceMetrics::bump(&m.wire_fallbacks);
        m.latency
            .record(RequestStatus::Success, Duration::from_micros(100));
        m.latency
            .record(RequestStatus::Shed, Duration::from_micros(5));
        m.op_outcomes.bump("schedule", RequestStatus::Success);
        m.op_outcomes.bump("patch", RequestStatus::Timeout);
        m.queue_wait.record(Duration::from_micros(10));
        m.compute.record(Duration::from_micros(90));
        m.deadline_slack.record(Duration::from_millis(40));
        m.record_algorithm("HEFT", Duration::from_micros(100));
        m.record_algorithm("ILS-D", Duration::from_millis(2));
        let text = m.render_prometheus(&GaugeSnapshot {
            queue_depth: 1,
            cache_entries: 3,
            instance_cache_entries: 2,
            workers: 4,
            queue_capacity: 64,
        });
        for family in [
            "hetsched_requests_total 2",
            "hetsched_cache_hits_total 1",
            "hetsched_cache_misses_total 1",
            "hetsched_queue_depth 1",
            "hetsched_cache_entries 3",
            "hetsched_instance_cache_hits_total 0",
            "hetsched_instance_cache_misses_total 1",
            "hetsched_instance_cache_entries 2",
            "hetsched_workers 4",
            "hetsched_wire_hits_total 1",
            "hetsched_wire_misses_total 1",
            "hetsched_wire_fallbacks_total 1",
            "# TYPE hetsched_request_latency_seconds histogram",
            "hetsched_request_latency_seconds_bucket{status=\"success\",le=\"+Inf\"} 1",
            "hetsched_request_latency_seconds_count{status=\"success\"} 1",
            "hetsched_request_latency_seconds_count{status=\"shed\"} 1",
            "hetsched_request_latency_seconds_count{status=\"timeout\"} 0",
            "hetsched_request_latency_seconds_count{status=\"error\"} 0",
            "# TYPE hetsched_op_outcomes_total counter",
            "hetsched_op_outcomes_total{op=\"schedule\",status=\"success\"} 1",
            "hetsched_op_outcomes_total{op=\"patch\",status=\"timeout\"} 1",
            "hetsched_op_outcomes_total{op=\"portfolio\",status=\"error\"} 0",
            "# TYPE hetsched_deadline_slack_seconds histogram",
            "# TYPE hetsched_queue_wait_seconds histogram",
            "hetsched_queue_wait_seconds_count 1",
            "# TYPE hetsched_compute_seconds histogram",
            "hetsched_compute_seconds_count 1",
            "# TYPE hetsched_algorithm_latency_seconds histogram",
            "hetsched_algorithm_latency_seconds_bucket{algorithm=\"HEFT\",le=\"+Inf\"} 1",
            "hetsched_algorithm_latency_seconds_count{algorithm=\"ILS-D\"} 1",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
        // every HELP has a TYPE and no line is empty mid-document
        for line in text.lines() {
            assert!(!line.is_empty());
        }
        // a histogram le bound is rendered in seconds
        assert!(
            text.contains("le=\"0.000128\""),
            "128µs bound in seconds:\n{text}"
        );
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
