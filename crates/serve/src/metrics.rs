//! Service metrics: lock-free counters plus a streaming latency histogram.
//!
//! Counters are relaxed atomics — they are monotone event counts with no
//! cross-counter invariants, so relaxed ordering is sufficient and a
//! `stats` read never blocks a request. Latencies go into a fixed
//! log₂-bucketed histogram (one bucket per bit length of the microsecond
//! value), from which p50/p99 are answered by bucket walk; recording is
//! O(1), wait-free, and allocation-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Streaming log-scale latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples whose microsecond value has bit length
    /// `i` (bucket 0: 0µs, bucket i: `[2^(i-1), 2^i)` µs).
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        (u64::BITS - us.leading_zeros()) as usize
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::bucket_of(us).min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Quantile estimate in microseconds (`q ∈ [0, 1]`); returns 0 with no
    /// samples. Resolution is the bucket width (a factor of two): the
    /// estimate is the geometric midpoint of the bucket holding the
    /// quantile rank.
    pub fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                let hi = (1u64 << i.min(62)) as f64;
                return (lo * hi).sqrt();
            }
        }
        // Unreachable with consistent counters; fall back to the max bucket.
        (1u64 << 62) as f64
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }
}

/// All service counters.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Schedule requests accepted for processing (hits + queued).
    pub requests: AtomicU64,
    /// Requests answered from the memoization cache.
    pub cache_hits: AtomicU64,
    /// Fresh schedules computed to completion.
    pub computed: AtomicU64,
    /// Error responses (bad input, unknown algorithm, worker panics).
    pub errors: AtomicU64,
    /// Worker panics caught (also counted in `errors`).
    pub panics: AtomicU64,
    /// Deadline expiries.
    pub timeouts: AtomicU64,
    /// Queue-full rejections.
    pub busy_rejections: AtomicU64,
    /// End-to-end latency of completed schedule requests.
    pub latency: LatencyHistogram,
}

impl ServiceMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
    }

    #[test]
    fn quantiles_track_mass() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~100us), 10 slow (~100ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(100));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // p50 falls in the 100us bucket [64, 128), p99 in the 100ms bucket.
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        assert!(p99 > 64_000.0, "p99 {p99}");
        assert!(p50 < p99);
        let mean = h.mean_us();
        assert!((mean - (90.0 * 100.0 + 10.0 * 100_000.0) / 100.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn concurrent_recording() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(Duration::from_micros(t * 50 + i % 7));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
