//! Wire-level request scanner: the front half of the raw-byte hot-line
//! cache.
//!
//! The serve daemon's steady-state traffic is dominated by *repeats* —
//! the same DAG/system/algorithm line arriving again (retries, fan-out
//! duplicates, periodic re-planning). The reply memo already collapses
//! the scheduling work for those, but every repeat still pays a full
//! `serde_json` parse, DAG/system construction, and fingerprint fold
//! before it can even ask the memo. This module removes that tax: a
//! shallow byte scanner walks the incoming NDJSON line **without building
//! any values**, masks out the fields that may differ between repeats
//! without changing the reply bytes (the *volatile* fields), and hashes
//! the rest into a 64-bit **wire digest**. The service maps digests to
//! preserialized reply bytes, so a repeat answers with one hash-map probe
//! and one `write`.
//!
//! ## Safety over coverage
//!
//! A wrong fast-path reply is a correctness bug; a missed fast path is a
//! few microseconds. The scanner therefore **refuses** (returns `None`,
//! falling back to the full parse) on anything it cannot vouch for
//! byte-for-byte:
//!
//! * lines that are not a single compact `{...}` object — any whitespace
//!   outside string literals disqualifies the line (two spellings of one
//!   request digest differently and simply both miss; correctness never
//!   depends on canonicalization);
//! * any `\` escape inside any string — escape-aware key comparison is
//!   where shallow scanners historically go wrong, so we don't do it;
//! * a `deadline_ms` or `jobs` key anywhere **except** directly inside
//!   the top-level `"options"` member — those are the only positions the
//!   protocol treats as volatile; the same spelling nested inside a DAG
//!   payload must stay part of the digest (it would change the parse);
//! * a `trace_ctx` or `trace_id` key anywhere — traced requests take the
//!   slow path by design (they journal spans and attach timing);
//! * an `op` that is not one of the four scheduling operations, nesting
//!   deeper than [`MAX_DEPTH`], duplicate volatile keys, or a
//!   `deadline_ms` value that is not a plain integer.
//!
//! ## Volatile-field exclusion
//!
//! `options.deadline_ms` and `options.jobs` never change reply bytes:
//! the memo key excludes them (deadlines only shed, jobs only pick a
//! thread count for a bit-identical computation). Their byte ranges —
//! each widened to absorb one adjacent comma so the remainder stays
//! syntactically coherent — are cut from the digest, which is an FNV-1a
//! fold over every byte outside the excluded ranges. `deadline_ms`'s
//! *value* is additionally parsed out of the raw bytes, because the
//! service still enforces deadlines on wire hits (the gateway sheds
//! expired requests before answering).

/// Maximum nesting depth the scanner will walk before giving up. Real
/// requests nest a handful of levels; anything deeper is hostile or
/// broken and belongs on the slow path.
const MAX_DEPTH: usize = 32;

/// The scheduling operations eligible for the wire fast path. Control
/// operations (`stats`, `shutdown`, ...) are cheap to parse and must
/// never be cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOp {
    /// `{"op":"schedule", ...}`
    Schedule,
    /// `{"op":"portfolio", ...}`
    Portfolio,
    /// `{"op":"schedule_many", ...}`
    ScheduleMany,
    /// `{"op":"patch", ...}`
    Patch,
}

impl WireOp {
    fn from_bytes(b: &[u8]) -> Option<WireOp> {
        match b {
            b"schedule" => Some(WireOp::Schedule),
            b"portfolio" => Some(WireOp::Portfolio),
            b"schedule_many" => Some(WireOp::ScheduleMany),
            b"patch" => Some(WireOp::Patch),
            _ => None,
        }
    }

    /// The protocol spelling, for metrics labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireOp::Schedule => "schedule",
            WireOp::Portfolio => "portfolio",
            WireOp::ScheduleMany => "schedule_many",
            WireOp::Patch => "patch",
        }
    }
}

/// A successfully scanned request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireScan {
    /// FNV-1a 64 digest over the line with volatile ranges excluded.
    pub digest: u64,
    /// Which scheduling operation the line carries.
    pub op: WireOp,
    /// The raw `options.deadline_ms` value, when present.
    pub deadline_ms: Option<u64>,
}

/// Scanner state threaded through the recursive descent.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Byte ranges excluded from the digest (volatile members).
    excluded: Vec<(usize, usize)>,
    op: Option<WireOp>,
    deadline_ms: Option<u64>,
}

/// Scan one trimmed request line. Returns `None` whenever the line is
/// not eligible for the wire fast path — the caller falls back to the
/// full parse, never to an error.
pub fn scan(line: &[u8]) -> Option<WireScan> {
    if line.first() != Some(&b'{') {
        return None;
    }
    let mut s = Scanner {
        bytes: line,
        pos: 0,
        excluded: Vec::new(),
        op: None,
        deadline_ms: None,
    };
    s.value(0, false)?;
    if s.pos != line.len() {
        return None; // trailing bytes after the closing brace
    }
    let op = s.op?;
    let digest = digest_excluding(line, &mut s.excluded);
    Some(WireScan {
        digest,
        op,
        deadline_ms: s.deadline_ms,
    })
}

/// Whether a reply line may enter a wire cache: it must be exactly the
/// shape every future repeat of the same digest will get from the slow
/// path. That means a memo-hit reply: status `ok`, no `cached: false`
/// anywhere (single bodies and batch entries all served from the memo),
/// and for batches a `computed` count of zero. First computations fail
/// this (their `cached: false` flips to `true` on the next repeat), so
/// wire caches warm on the *second* repeat — when the reply shape has
/// reached its fixed point. Both tiers use this predicate: the shard's
/// write-through from the reply memo and the gateway's hot-line cache.
pub fn reply_stable(bytes: &[u8]) -> bool {
    fn contains(hay: &[u8], needle: &[u8]) -> bool {
        hay.windows(needle.len()).any(|w| w == needle)
    }
    bytes.starts_with(b"{\"status\":\"ok\"")
        && !contains(bytes, b"\"cached\":false")
        && (!contains(bytes, b"\"computed\":") || contains(bytes, b"\"computed\":0"))
}

/// FNV-1a 64 over `bytes` with the (merged) `ranges` cut out.
fn digest_excluding(bytes: &[u8], ranges: &mut [(usize, usize)]) -> u64 {
    ranges.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut pos = 0;
    let mut fold = |b: &[u8]| {
        for &x in b {
            h ^= u64::from(x);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &(lo, hi) in ranges.iter() {
        if lo > pos {
            fold(&bytes[pos..lo]);
        }
        pos = pos.max(hi);
    }
    fold(&bytes[pos..]);
    h
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consume one string literal (opening quote at `self.pos`), returning
    /// the content range. `None` on escapes or an unterminated string.
    fn string(&mut self) -> Option<(usize, usize)> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let start = self.pos;
        loop {
            match self.peek()? {
                b'"' => {
                    let end = self.pos;
                    self.pos += 1;
                    return Some((start, end));
                }
                b'\\' => return None, // escapes: slow path
                _ => self.pos += 1,
            }
        }
    }

    /// Consume one non-string, non-container scalar (number / bool /
    /// null): bytes up to the next `,`, `}`, or `]`. Whitespace inside
    /// disqualifies the line like everywhere else.
    fn scalar(&mut self) -> Option<(usize, usize)> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b',' | b'}' | b']' => break,
                b' ' | b'\t' | b'\r' | b'\n' => return None,
                _ => self.pos += 1,
            }
        }
        (self.pos > start).then_some((start, self.pos))
    }

    /// Consume one JSON value. `in_options` is true exactly when this
    /// value is a direct member of the top-level `"options"` object —
    /// the only scope where volatile keys are legal.
    fn value(&mut self, depth: usize, in_options: bool) -> Option<()> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.peek()? {
            b'{' => self.object(depth, in_options),
            b'[' => self.array(depth),
            b'"' => self.string().map(|_| ()),
            b' ' | b'\t' | b'\r' | b'\n' => None,
            _ => self.scalar().map(|_| ()),
        }
    }

    fn array(&mut self, depth: usize) -> Option<()> {
        self.pos += 1; // '['
        if self.peek()? == b']' {
            self.pos += 1;
            return Some(());
        }
        loop {
            self.value(depth + 1, false)?;
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(());
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self, depth: usize, in_options: bool) -> Option<()> {
        self.pos += 1; // '{'
        if self.peek()? == b'}' {
            self.pos += 1;
            return Some(());
        }
        loop {
            // `member_start` points at the key's opening quote; the comma
            // *before* it (if any) was consumed on the previous round and
            // recorded in `prev_comma` for exclusion widening.
            let member_start = self.pos;
            if self.peek()? != b'"' {
                return None;
            }
            let (klo, khi) = self.string()?;
            let key = &self.bytes[klo..khi];
            // Trace keys poison the line anywhere: traced requests take
            // the slow path, and `trace_id` inside payloads is rare
            // enough that refusing costs nothing.
            if key == b"trace_ctx" || key == b"trace_id" {
                return None;
            }
            let volatile = key == b"deadline_ms" || key == b"jobs";
            if volatile && !in_options {
                // The same spelling outside `options` is payload data —
                // excluding it would merge lines that parse differently.
                return None;
            }
            if self.peek()? != b':' {
                return None;
            }
            self.pos += 1;
            let top_level = depth == 0;
            let entering_options = top_level && key == b"options";
            if volatile {
                if key == b"deadline_ms" {
                    if self.deadline_ms.is_some() {
                        return None; // duplicate key: refuse
                    }
                    let (vlo, vhi) = match self.peek()? {
                        b'{' | b'[' | b'"' => return None, // not an integer
                        _ => self.scalar()?,
                    };
                    let mut v: u64 = 0;
                    for &d in &self.bytes[vlo..vhi] {
                        if !d.is_ascii_digit() {
                            return None; // null / float / negative: refuse
                        }
                        v = v.checked_mul(10)?.checked_add(u64::from(d - b'0'))?;
                    }
                    self.deadline_ms = Some(v);
                } else {
                    self.value(depth + 1, false)?;
                }
            } else if top_level && key == b"op" {
                if self.op.is_some() || self.peek()? != b'"' {
                    return None;
                }
                let (vlo, vhi) = self.string()?;
                self.op = Some(WireOp::from_bytes(&self.bytes[vlo..vhi])?);
            } else {
                self.value(depth + 1, entering_options)?;
            }
            let member_end = self.pos;
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                    if volatile {
                        // absorb the *following* comma: `a,VOLATILE,b`
                        // digests as `a,b`
                        self.excluded.push((member_start, self.pos));
                    }
                }
                b'}' => {
                    self.pos += 1;
                    if volatile {
                        // last member: absorb the *preceding* comma
                        let lo = member_start
                            - usize::from(
                                self.bytes.get(member_start.wrapping_sub(1)) == Some(&b','),
                            );
                        self.excluded.push((lo, member_end));
                    }
                    return Some(());
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(line: &str) -> WireScan {
        scan(line.as_bytes()).expect("line should scan")
    }

    #[test]
    fn compact_schedule_line_scans_with_op_and_deadline() {
        let s = ok(
            r#"{"op":"schedule","dag":{"weights":[1.0]},"algorithm":"HEFT","options":{"deadline_ms":250,"jobs":4}}"#,
        );
        assert_eq!(s.op, WireOp::Schedule);
        assert_eq!(s.deadline_ms, Some(250));
    }

    #[test]
    fn volatile_fields_do_not_change_the_digest() {
        let base =
            ok(r#"{"op":"schedule","dag":{"w":[1.0]},"options":{"deadline_ms":250,"jobs":4}}"#);
        for variant in [
            r#"{"op":"schedule","dag":{"w":[1.0]},"options":{"deadline_ms":9999,"jobs":1}}"#,
            r#"{"op":"schedule","dag":{"w":[1.0]},"options":{"jobs":2,"deadline_ms":9999}}"#,
            r#"{"op":"schedule","dag":{"w":[1.0]},"options":{"jobs":8}}"#,
            r#"{"op":"schedule","dag":{"w":[1.0]},"options":{"deadline_ms":1}}"#,
            r#"{"op":"schedule","dag":{"w":[1.0]},"options":{}}"#,
        ] {
            assert_eq!(ok(variant).digest, base.digest, "line: {variant}");
        }
    }

    #[test]
    fn payload_differences_change_the_digest() {
        let a = ok(r#"{"op":"schedule","dag":{"w":[1.0]},"options":{}}"#);
        let b = ok(r#"{"op":"schedule","dag":{"w":[2.0]},"options":{}}"#);
        let c = ok(r#"{"op":"schedule","dag":{"w":[1.0]},"options":{"simulate":true}}"#);
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn whitespace_and_escapes_fall_back() {
        assert!(
            scan(br#"{"op": "schedule"}"#).is_none(),
            "space after colon"
        );
        assert!(
            scan(b"{\"op\":\"schedule\",\n\"x\":1}").is_none(),
            "newline"
        );
        assert!(
            scan(br#"{"op":"schedule","s":"a\"b"}"#).is_none(),
            "escape in string"
        );
        // whitespace *inside* strings is fine
        assert!(scan(br#"{"op":"schedule","s":"a b"}"#).is_some());
    }

    #[test]
    fn non_scheduling_and_malformed_lines_fall_back() {
        assert!(scan(br#"{"op":"stats"}"#).is_none(), "control op");
        assert!(scan(br#"{"op":"shutdown"}"#).is_none());
        assert!(scan(br#"{"dag":{}}"#).is_none(), "no op");
        assert!(scan(br#"[1,2,3]"#).is_none(), "not an object");
        assert!(scan(br#"{"op":"schedule""#).is_none(), "truncated");
        assert!(scan(br#"{"op":"schedule"}x"#).is_none(), "trailing bytes");
        assert!(
            scan(br#"{"op":"schedule","op":"patch"}"#).is_none(),
            "dup op"
        );
        assert!(scan(b"").is_none());
    }

    #[test]
    fn volatile_keys_outside_options_fall_back() {
        assert!(scan(br#"{"op":"schedule","deadline_ms":5}"#).is_none());
        assert!(scan(br#"{"op":"schedule","dag":{"jobs":3},"options":{}}"#).is_none());
        // nested one level deeper inside options is payload too
        assert!(
            scan(br#"{"op":"schedule","options":{"x":{"deadline_ms":5}}}"#).is_none(),
            "deadline_ms below options.x is not the volatile position"
        );
    }

    #[test]
    fn trace_keys_anywhere_fall_back() {
        assert!(scan(br#"{"op":"schedule","options":{"trace_ctx":{"trace_id":"t"}}}"#).is_none());
        assert!(scan(br#"{"op":"schedule","dag":{"trace_id":"x"}}"#).is_none());
    }

    #[test]
    fn bad_deadline_values_fall_back() {
        assert!(scan(br#"{"op":"schedule","options":{"deadline_ms":null}}"#).is_none());
        assert!(scan(br#"{"op":"schedule","options":{"deadline_ms":-1}}"#).is_none());
        assert!(scan(br#"{"op":"schedule","options":{"deadline_ms":1.5}}"#).is_none());
        assert!(scan(br#"{"op":"schedule","options":{"deadline_ms":"5"}}"#).is_none());
        assert!(
            scan(br#"{"op":"schedule","options":{"deadline_ms":1,"deadline_ms":2}}"#).is_none(),
            "duplicate deadline"
        );
    }

    #[test]
    fn deep_nesting_falls_back() {
        let mut line = String::from(r#"{"op":"schedule","x":"#);
        for _ in 0..40 {
            line.push_str(r#"{"y":"#);
        }
        line.push('1');
        for _ in 0..40 {
            line.push('}');
        }
        line.push('}');
        assert!(scan(line.as_bytes()).is_none());
    }

    #[test]
    fn all_four_scheduling_ops_are_eligible() {
        for (op, want) in [
            ("schedule", WireOp::Schedule),
            ("portfolio", WireOp::Portfolio),
            ("schedule_many", WireOp::ScheduleMany),
            ("patch", WireOp::Patch),
        ] {
            let line = format!(r#"{{"op":"{op}","x":1}}"#);
            assert_eq!(ok(&line).op, want);
            assert_eq!(want.as_str(), op);
        }
    }

    #[test]
    fn exclusion_absorbs_exactly_one_comma_each_side() {
        // volatile in the middle, at the end, and the only member
        let mid = ok(r#"{"op":"patch","options":{"jobs":1,"simulate":true}}"#);
        let mid2 = ok(r#"{"op":"patch","options":{"simulate":true}}"#);
        assert_eq!(mid.digest, mid2.digest);
        let tail = ok(r#"{"op":"patch","options":{"simulate":true,"jobs":1}}"#);
        assert_eq!(tail.digest, mid2.digest);
        let only = ok(r#"{"op":"patch","options":{"jobs":1}}"#);
        let empty = ok(r#"{"op":"patch","options":{}}"#);
        assert_eq!(only.digest, empty.digest);
    }
}
