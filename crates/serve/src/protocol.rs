//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is a single JSON object on one line, dispatched on its
//! `"op"` field; every response is a single JSON object on one line,
//! discriminated by its `"status"` field. See `crates/serve/README.md` for
//! the full protocol reference with examples.

use serde::{Deserialize, Serialize};

use hetsched_core::Schedule;
use hetsched_dag::io::DagSpec;
use hetsched_platform::SystemSpec;
use hetsched_sim::SimResult;

/// Per-request options for a `schedule` request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RequestOptions {
    /// Run the zero-noise discrete-event simulator on the produced schedule
    /// and report its makespan as a cross-check.
    #[serde(default)]
    pub simulate: bool,
    /// Per-request deadline in milliseconds; the service answers `timeout`
    /// if the schedule is not ready in time. Falls back to the service's
    /// configured default when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Diagnostic aid: make the worker sleep this long before scheduling.
    /// Used to exercise deadline handling deterministically; not for
    /// production requests.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub debug_sleep_ms: Option<u64>,
    /// Diagnostic aid: make the worker panic instead of scheduling, to
    /// exercise panic isolation. The daemon must survive and answer
    /// `error`.
    #[serde(default)]
    pub debug_panic: bool,
    /// Capture a scheduler trace while computing and attach it to the
    /// response (`trace` field of the schedule payload): placement
    /// decision log, engine counters, and phase timings. Tracing never
    /// changes the produced schedule; it only observes. Part of the cache
    /// key, so traced and untraced requests memoize separately.
    #[serde(default)]
    pub trace: bool,
    /// Intra-algorithm search threads for this request (GA, ILS-D,
    /// DUP-HEFT, BNB candidate evaluation), capped by the service's worker
    /// pool size. Schedules are bit-identical at any thread count, so like
    /// `deadline_ms` this is not part of the cache key. Falls back to the
    /// daemon's environment (`HETSCHED_JOBS`, then available parallelism)
    /// when absent.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub jobs: Option<usize>,
    /// Distributed trace context. When present, every tier the request
    /// passes through (gateway, shard service, worker) records spans under
    /// `trace_id` into its in-memory journal (drained by the `journal` op)
    /// and the reply carries a [`TimingBody`] with the hop-by-hop
    /// breakdown. Like `deadline_ms` and `jobs`, the context is **not**
    /// part of any memo or dedup key and never changes a schedule byte:
    /// tracing observes routing and queueing, not scheduling.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace_ctx: Option<TraceCtx>,
}

/// Per-request distributed trace context, carried in
/// [`RequestOptions::trace_ctx`] and propagated gateway → shard → worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Request-unique trace id (16 lowercase hex digits by convention;
    /// any non-empty string is accepted and echoed back verbatim).
    pub trace_id: String,
    /// Per-hop monotonic timestamps, appended by each tier that forwards
    /// the request downstream. Clocks are per-process monotonic offsets
    /// (µs since that tier received the request), not wall time, so hops
    /// are comparable within a tier but only ordered across tiers.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub hops: Vec<Hop>,
}

impl TraceCtx {
    /// A fresh context with the given id and no recorded hops.
    pub fn new(trace_id: impl Into<String>) -> Self {
        TraceCtx {
            trace_id: trace_id.into(),
            hops: Vec::new(),
        }
    }
}

/// One hop stamp in a [`TraceCtx`]: which tier forwarded the request, and
/// how long it had held it (µs on that tier's monotonic clock).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// Forwarding tier (`"gateway"`, `"shard"`).
    pub tier: String,
    /// µs between the tier receiving the request and forwarding it.
    pub sent_at_us: u64,
}

/// A client request, dispatched on the `"op"` field.
// Variant sizes are deliberately uneven: `Schedule` carries the whole
// request payload and each `Request` lives only for the duration of one
// dispatch, so boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Compute a schedule for `dag` on `system` with `algorithm`.
    Schedule {
        /// Task graph (validated on receipt).
        dag: DagSpec,
        /// Target system (validated on receipt, sized to the DAG).
        system: SystemSpec,
        /// Registry name of the scheduler (`"HEFT"`, `"ILS-D"`, ...).
        algorithm: String,
        /// Optional request modifiers.
        #[serde(default)]
        options: RequestOptions,
    },
    /// Run several schedulers against one shared problem instance and
    /// return the best schedule plus a per-algorithm makespan table. The
    /// member computations fan out across the worker pool and memoize
    /// individually, exactly as if each had been its own `schedule`
    /// request.
    Portfolio {
        /// Task graph (validated on receipt).
        dag: DagSpec,
        /// Target system (validated on receipt, sized to the DAG).
        system: SystemSpec,
        /// Registry names of the portfolio members, in priority order
        /// (ties on makespan go to the earliest member). Empty means
        /// "every registered algorithm".
        #[serde(default)]
        algorithms: Vec<String>,
        /// Optional request modifiers, applied to every member.
        #[serde(default)]
        options: RequestOptions,
    },
    /// Schedule a whole batch of problem instances with one algorithm in
    /// one round trip. Replies with an `ok` whose `many` payload holds one
    /// schedule body **per instance, in request order** — each body
    /// exactly what a standalone `schedule` request for that instance
    /// would have produced (the reply memo is consulted per instance, so a
    /// batch can mix cache hits and fresh computations). This is the wire
    /// face of `Scheduler::schedule_many`: high-QPS streams of small DAGs
    /// pay one request round trip and one batched compute instead of N.
    ScheduleMany {
        /// The batch, in reply order.
        instances: Vec<InstanceSpec>,
        /// Registry name of the scheduler, applied to every instance.
        algorithm: String,
        /// Optional request modifiers, applied to every instance.
        #[serde(default)]
        options: RequestOptions,
    },
    /// Incrementally reschedule a cached problem: apply `deltas` to the
    /// instance whose content fingerprint is `parent` (the `problem` field
    /// of an earlier schedule response) and schedule the patched problem.
    /// The reply is bit-identical to sending the full patched problem as a
    /// `schedule` request — for the EFT family the service gets there by
    /// *repairing* the parent's schedule instead of recomputing it. An
    /// unknown or evicted `parent` answers with an error starting
    /// `unknown_parent`; re-send the full problem to re-seed the cache.
    Patch {
        /// Content fingerprint (16 hex digits) of the parent problem, as
        /// returned in the `problem` field of a schedule response.
        parent: String,
        /// Registry name of the scheduler (`"HEFT"`, `"ILS-D"`, ...).
        algorithm: String,
        /// Problem deltas, applied in order (validated against the state
        /// each predecessor left behind).
        deltas: Vec<hetsched_core::Delta>,
        /// Optional request modifiers.
        #[serde(default)]
        options: RequestOptions,
    },
    /// Identify the peer: answers with a `hello` payload naming the
    /// service, its version, and its capacity. The gateway sends this as a
    /// handshake when it opens a shard connection, so a misconfigured
    /// backend (wrong port, wrong protocol) is caught before any request
    /// is routed to it.
    Hello,
    /// Query service counters and latency quantiles.
    Stats,
    /// Drain this tier's bounded in-memory span journal: answers every
    /// span recorded for traced requests (those carrying
    /// `options.trace_ctx`) since the last drain, then forgets them.
    /// `hetsched-cli explain --service` drains a gateway plus its shards
    /// and merges the journals into one Chrome-trace timeline.
    Journal,
    /// Render every service metric family in the Prometheus text
    /// exposition format (counters, gauges, latency histograms — global
    /// and per algorithm).
    Metrics,
    /// Begin graceful shutdown: stop accepting work, drain in-flight
    /// requests, then exit.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, serde_json::Error> {
        serde_json::from_str(line)
    }
}

/// One problem of a `schedule_many` batch: a DAG plus its target system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Task graph (validated on receipt).
    pub dag: DagSpec,
    /// Target system (validated on receipt, sized to the DAG).
    pub system: SystemSpec,
}

/// Batch payload of a `schedule_many` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleManyBody {
    /// One schedule body per requested instance, **in request order** —
    /// entry `i` answers instance `i`.
    pub entries: Vec<ScheduleBody>,
    /// How many entries were served from the reply memo.
    pub cached: usize,
    /// How many entries were computed fresh by this request.
    pub computed: usize,
}

/// Successful scheduling payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleBody {
    /// Scheduler registry name that produced this schedule.
    pub algorithm: String,
    /// Predicted makespan (seconds).
    pub makespan: f64,
    /// Schedule length ratio (makespan over the communication-free
    /// critical-path lower bound).
    pub slr: f64,
    /// Speedup over the best single processor.
    pub speedup: f64,
    /// Content fingerprint of (DAG + system + algorithm + options), hex.
    pub fingerprint: String,
    /// Content fingerprint of the problem alone (DAG + system), hex —
    /// the key a later `patch` request names as its `parent`.
    #[serde(default)]
    pub problem: String,
    /// Whether this response was served from the memoization cache.
    pub cached: bool,
    /// The schedule itself (per-processor timelines).
    pub schedule: Schedule,
    /// Zero-noise simulator replay, when `options.simulate` was set.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim: Option<SimBody>,
    /// Scheduler trace, when `options.trace` was set.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceBody>,
    /// How an incremental repair spent its work, when this schedule was
    /// computed by the `patch` repair path (absent for from-scratch
    /// computations). Cache hits replay whatever the stored body recorded.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub repair: Option<RepairBody>,
}

/// Repair accounting attached to a schedule computed via the `patch` op's
/// incremental path. The schedule itself is bit-identical to a
/// from-scratch run either way; this only reports how much work the
/// service skipped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairBody {
    /// Leading rank-order placements replayed verbatim from the parent.
    pub replayed: usize,
    /// Tasks re-placed by the ordinary EFT loop.
    pub rescheduled: usize,
    /// Whether the repair fell back to a full from-scratch run.
    pub fresh: bool,
}

/// Scheduler trace attached to a schedule response when `options.trace`
/// is set. Cache hits return the trace captured when the schedule was
/// first computed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBody {
    /// Engine counters accumulated over the whole run.
    pub counters: hetsched_trace::Counters,
    /// Phase-level profiling spans (rank computation, placement loop).
    pub phases: Vec<hetsched_trace::PhaseSpan>,
    /// Full event log: task selections, EFT decisions with per-processor
    /// candidates, and the placement decision log of the final schedule.
    pub events: Vec<hetsched_trace::Event>,
}

/// Hop-by-hop latency breakdown attached to a reply when the request
/// carried [`RequestOptions::trace_ctx`]. Purely observational: the
/// scheduling payload is byte-identical with or without it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingBody {
    /// Trace id echoed from the request's context.
    pub trace_id: String,
    /// Hop stamps accumulated while the request travelled downstream.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub hops: Vec<Hop>,
    /// Shard-service breakdown (absent on gateway-local replies that
    /// never reached a shard, e.g. sheds).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub serve: Option<ServeTiming>,
    /// Gateway breakdown, inserted by the gateway on the way back
    /// (absent when the client talked to a shard directly).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub gateway: Option<GatewayTiming>,
}

/// Shard-side timing: where the request spent its time inside one serve
/// daemon.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeTiming {
    /// End-to-end µs from transport parse to the reply being ready.
    pub total_us: u64,
    /// µs parsing the request line into the typed request.
    pub parse_us: u64,
    /// µs the job waited in the bounded queue before a worker picked it
    /// up (0 for memo hits, which never enqueue).
    pub queue_us: u64,
    /// µs of worker compute (scheduling + validation + optional
    /// simulation; 0 for memo hits).
    pub compute_us: u64,
    /// Cache disposition: `"memo"` (reply memo hit), `"computed"` (fresh
    /// schedule), or `"repaired"` (patch served by incremental repair).
    pub cache: String,
}

/// Gateway-side timing: admission, dedup disposition, and backend time.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GatewayTiming {
    /// End-to-end µs from socket arrival to the reply line being ready.
    pub total_us: u64,
    /// µs spent on admission (parse, validation, deadline check, shard
    /// selection) before the dedup/forward decision.
    pub admission_us: u64,
    /// Single-flight disposition: `"leader"` (this request computed),
    /// `"follower"` (coalesced onto an identical in-flight request), or
    /// `"none"` (gateway-local reply).
    pub dedup: String,
    /// µs spent inside backend round trips (leader) or waiting on the
    /// leader's reply (follower).
    pub backend_us: u64,
    /// Backend attempts (1 = home shard; more = failover).
    pub attempts: u32,
}

/// Journal payload returned by the `journal` op: every span recorded
/// since the last drain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalBody {
    /// Which tier recorded these spans (`"gateway"` or `"shard"`).
    pub source: String,
    /// Drained spans, in recording order.
    pub spans: Vec<SpanRecord>,
}

/// One completed span in a tier's journal. Timestamps are µs offsets on
/// the recording tier's monotonic clock, relative to the moment that
/// tier received the traced request — so spans of one request nest
/// within its root `request` span by construction, and a merger aligns
/// tiers by nesting a shard's root span inside the gateway's `backend`
/// span for the same trace id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace id of the request this span belongs to.
    pub trace_id: String,
    /// Span name (`request`, `admission`, `backend`, `queue`,
    /// `compute`, `engine:<phase>`, ...).
    pub name: String,
    /// µs offset from the request's arrival at the recording tier.
    pub start_us: u64,
    /// Span duration, µs.
    pub dur_us: u64,
    /// Free-form detail (shard address, dedup role, cache disposition).
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub detail: String,
}

/// One member row of a portfolio response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioEntryBody {
    /// Scheduler registry name.
    pub algorithm: String,
    /// The member's predicted makespan.
    pub makespan: f64,
    /// Whether this member's schedule came from the memoization cache.
    pub cached: bool,
}

/// Portfolio payload: the winning member's full schedule plus the
/// per-algorithm makespan table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortfolioBody {
    /// Per-member results, in the requested order.
    pub entries: Vec<PortfolioEntryBody>,
    /// Index into `entries` of the winner (minimum makespan under total
    /// order; ties go to the earliest member).
    pub best: usize,
    /// The winning member's full schedule payload.
    pub schedule: ScheduleBody,
}

/// Simulator cross-check attached to a schedule response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimBody {
    /// Raw simulator result (realized makespan, per-task finish times,
    /// event count).
    pub result: SimResult,
    /// Whether the simulated makespan matches the predicted one to within
    /// numerical tolerance.
    pub matches_prediction: bool,
}

/// Identification payload returned by the `hello` op. This is the shard
/// handshake: the gateway refuses to route to a backend whose `service`
/// field is not `"hetsched-serve"`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloBody {
    /// Service identifier; always `"hetsched-serve"` for this daemon.
    pub service: String,
    /// Crate version of the responding daemon.
    pub version: String,
    /// Worker threads in the responding daemon's pool.
    pub workers: usize,
    /// Bounded queue capacity of the responding daemon.
    pub queue_capacity: usize,
}

/// Service counters and latency quantiles returned by the `stats` op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsBody {
    /// Schedule requests received (cache hits included, rejects excluded).
    pub requests: u64,
    /// Requests answered from the memoization cache.
    pub cache_hits: u64,
    /// Requests that computed a fresh schedule to completion.
    pub computed: u64,
    /// Requests answered `error` (bad input, unknown algorithm, panic).
    pub errors: u64,
    /// Worker panics caught (a subset of `errors`).
    pub panics: u64,
    /// Requests answered `timeout`.
    pub timeouts: u64,
    /// Requests answered `busy` (queue full).
    pub busy_rejections: u64,
    /// Connection threads that exited by panicking (joined and counted by
    /// the transport's reaper; the daemon itself keeps serving).
    #[serde(default)]
    pub connection_panics: u64,
    /// Entries currently in the memoization cache.
    pub cache_entries: usize,
    /// Problem-instance cache hits: requests that reused a shared
    /// `ProblemInstance` (and therefore its memoized rank vectors).
    #[serde(default)]
    pub instance_cache_hits: u64,
    /// Problem-instance cache misses: instances built fresh.
    #[serde(default)]
    pub instance_cache_misses: u64,
    /// Entries currently in the problem-instance cache.
    #[serde(default)]
    pub instance_cache_entries: usize,
    /// `patch` requests accepted (parent found, deltas applied).
    #[serde(default)]
    pub patches: u64,
    /// Schedules produced by incremental repair rather than from-scratch
    /// computation (a subset of `computed`).
    #[serde(default)]
    pub repairs: u64,
    /// Requests answered from the wire-level reply cache without parsing
    /// (a subset of `cache_hits`).
    #[serde(default)]
    pub wire_hits: u64,
    /// Scanned requests whose digest missed the wire cache.
    #[serde(default)]
    pub wire_misses: u64,
    /// Requests the wire scanner refused (full-parse path).
    #[serde(default)]
    pub wire_fallbacks: u64,
    /// Worker threads.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Latency samples recorded (completed schedule requests).
    pub latency_samples: u64,
    /// Median end-to-end schedule latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile end-to-end schedule latency, microseconds.
    pub latency_p99_us: f64,
    /// Median queue wait of computed jobs (enqueue → worker dequeue), µs.
    #[serde(default)]
    pub qwait_p50_us: f64,
    /// 99th-percentile queue wait of computed jobs, µs.
    #[serde(default)]
    pub qwait_p99_us: f64,
    /// Median worker compute time of computed jobs, µs.
    #[serde(default)]
    pub compute_p50_us: f64,
    /// 99th-percentile worker compute time of computed jobs, µs.
    #[serde(default)]
    pub compute_p99_us: f64,
}

/// A service response, discriminated on the `"status"` field.
#[allow(clippy::large_enum_variant)] // `Ok` carries the payload; see `Request`
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum Response {
    /// Request succeeded.
    Ok {
        /// Scheduling payload (`schedule` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        schedule: Option<ScheduleBody>,
        /// Stats payload (`stats` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        stats: Option<StatsBody>,
        /// Prometheus text exposition (`metrics` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        metrics: Option<String>,
        /// Portfolio payload (`portfolio` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        portfolio: Option<PortfolioBody>,
        /// Batch payload (`schedule_many` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        many: Option<ScheduleManyBody>,
        /// Identification payload (`hello` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        hello: Option<HelloBody>,
        /// Journal payload (`journal` op).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        journal: Option<JournalBody>,
        /// Hop-by-hop latency breakdown, attached when the request
        /// carried a trace context. Sits beside the scheduling payload
        /// (never inside it) so memoized schedule bodies stay
        /// byte-identical whether or not a request was traced.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        timing: Option<TimingBody>,
    },
    /// The bounded request queue is full; retry later.
    Busy {
        /// Human-readable detail.
        message: String,
    },
    /// Load shed: the request was refused by admission control before it
    /// occupied a shard slot (gateway queue over depth, per-shard inflight
    /// budget exhausted, or the deadline already passed on arrival).
    /// Distinct from `busy`, which means a shard's own bounded queue was
    /// full: `shed` is the front door turning work away early.
    Shed {
        /// Human-readable detail.
        message: String,
    },
    /// The per-request deadline passed before the schedule was ready. The
    /// computation keeps running and populates the cache, so an identical
    /// retry may hit.
    Timeout {
        /// Human-readable detail.
        message: String,
    },
    /// The request failed (malformed JSON, invalid DAG/system, unknown
    /// algorithm, or an isolated worker panic).
    Error {
        /// Human-readable detail.
        message: String,
    },
    /// Shutdown acknowledged; the service drains and exits.
    ShuttingDown,
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error {
            message: message.into(),
        }
    }

    /// Shorthand for a load-shed response.
    pub fn shed(message: impl Into<String>) -> Self {
        Response::Shed {
            message: message.into(),
        }
    }

    /// An `ok` response with every payload slot empty.
    fn ok_empty() -> Self {
        Response::Ok {
            schedule: None,
            stats: None,
            metrics: None,
            portfolio: None,
            many: None,
            hello: None,
            journal: None,
            timing: None,
        }
    }

    /// Shorthand for a schedule payload response.
    pub fn schedule(body: ScheduleBody) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { schedule, .. } = &mut r {
            *schedule = Some(body);
        }
        r
    }

    /// Shorthand for a stats payload response.
    pub fn stats(body: StatsBody) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { stats, .. } = &mut r {
            *stats = Some(body);
        }
        r
    }

    /// Shorthand for a Prometheus metrics response.
    pub fn metrics(text: impl Into<String>) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { metrics, .. } = &mut r {
            *metrics = Some(text.into());
        }
        r
    }

    /// Shorthand for a portfolio payload response.
    pub fn portfolio(body: PortfolioBody) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { portfolio, .. } = &mut r {
            *portfolio = Some(body);
        }
        r
    }

    /// Shorthand for a `schedule_many` batch payload response.
    pub fn many(body: ScheduleManyBody) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { many, .. } = &mut r {
            *many = Some(body);
        }
        r
    }

    /// Shorthand for a hello (handshake) payload response.
    pub fn hello(body: HelloBody) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { hello, .. } = &mut r {
            *hello = Some(body);
        }
        r
    }

    /// Shorthand for a journal payload response.
    pub fn journal(body: JournalBody) -> Self {
        let mut r = Self::ok_empty();
        if let Response::Ok { journal, .. } = &mut r {
            *journal = Some(body);
        }
        r
    }

    /// Attach (or replace) the timing block of an `ok` response; a no-op
    /// on every other status.
    pub fn with_timing(mut self, body: TimingBody) -> Self {
        if let Response::Ok { timing, .. } = &mut self {
            *timing = Some(body);
        }
        self
    }

    /// Serialize as one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_request_roundtrip() {
        let line = r#"{"op":"schedule","dag":{"tasks":[{"weight":2.0},{"weight":3.0}],"edges":[{"src":0,"dst":1,"data":4.0}]},"system":{"processors":{"kind":"homogeneous","count":2},"network":{"topology":"fully_connected","bandwidth":1.0}},"algorithm":"HEFT"}"#;
        let req = Request::parse(line).unwrap();
        match &req {
            Request::Schedule {
                dag,
                algorithm,
                options,
                ..
            } => {
                assert_eq!(dag.tasks.len(), 2);
                assert_eq!(algorithm, "HEFT");
                assert_eq!(*options, RequestOptions::default());
            }
            other => panic!("wrong op: {other:?}"),
        }
        // And the serialized form parses back to the same op.
        let back = Request::parse(&serde_json::to_string(&req).unwrap()).unwrap();
        assert!(matches!(back, Request::Schedule { .. }));
    }

    #[test]
    fn schedule_many_roundtrip() {
        let line = r#"{"op":"schedule_many","instances":[
            {"dag":{"tasks":[{"weight":2.0}],"edges":[]},
             "system":{"processors":{"kind":"homogeneous","count":2},"network":{"topology":"fully_connected","bandwidth":1.0}}},
            {"dag":{"tasks":[{"weight":1.0},{"weight":3.0}],"edges":[{"src":0,"dst":1,"data":4.0}]},
             "system":{"processors":{"kind":"homogeneous","count":2},"network":{"topology":"fully_connected","bandwidth":1.0}}}],
            "algorithm":"HEFT"}"#;
        let req = Request::parse(line).unwrap();
        match &req {
            Request::ScheduleMany {
                instances,
                algorithm,
                options,
            } => {
                assert_eq!(instances.len(), 2);
                assert_eq!(instances[1].dag.tasks.len(), 2);
                assert_eq!(algorithm, "HEFT");
                assert_eq!(*options, RequestOptions::default());
            }
            other => panic!("wrong op: {other:?}"),
        }
        let back = Request::parse(&serde_json::to_string(&req).unwrap()).unwrap();
        assert!(matches!(back, Request::ScheduleMany { .. }));
    }

    #[test]
    fn patch_roundtrip() {
        let req = Request::parse(
            r#"{"op":"patch","parent":"00000000deadbeef","algorithm":"HEFT",
                "deltas":[{"kind":"etc_entry","task":1,"proc":0,"time":4.5},
                          {"kind":"task_weight","task":2,"weight":3.0}]}"#,
        )
        .unwrap();
        match &req {
            Request::Patch {
                parent,
                algorithm,
                deltas,
                options,
            } => {
                assert_eq!(parent, "00000000deadbeef");
                assert_eq!(algorithm, "HEFT");
                assert_eq!(deltas.len(), 2);
                assert!(matches!(deltas[0], hetsched_core::Delta::EtcEntry { .. }));
                assert_eq!(*options, RequestOptions::default());
            }
            other => panic!("wrong op: {other:?}"),
        }
        let back = Request::parse(&serde_json::to_string(&req).unwrap()).unwrap();
        assert!(matches!(back, Request::Patch { .. }));
    }

    #[test]
    fn schedule_body_problem_field_defaults_for_old_peers() {
        // A pre-patch peer's schedule body (no `problem`, no `repair`)
        // still deserializes; the patch key just comes back empty.
        let v = serde_json::json!({
            "algorithm": "HEFT", "makespan": 1.0, "slr": 1.0, "speedup": 1.0,
            "fingerprint": "0000000000000001", "cached": false,
            "schedule": Schedule::new(1, 1),
        });
        let body: ScheduleBody = serde_json::from_value(v).unwrap();
        assert_eq!(body.problem, "");
        assert!(body.repair.is_none());
    }

    #[test]
    fn hello_roundtrip_and_shed_line() {
        assert!(matches!(
            Request::parse(r#"{"op":"hello"}"#).unwrap(),
            Request::Hello
        ));
        let line = Response::hello(HelloBody {
            service: "hetsched-serve".to_string(),
            version: "0.1.0".to_string(),
            workers: 2,
            queue_capacity: 8,
        })
        .to_line();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"));
        assert_eq!(v["hello"]["service"].as_str(), Some("hetsched-serve"));
        assert_eq!(v["hello"]["workers"].as_u64(), Some(2));

        let line = Response::shed("queue over depth").to_line();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["status"].as_str(), Some("shed"));
        assert_eq!(v["message"].as_str(), Some("queue over depth"));
        // and it parses back into the typed enum
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(back, Response::Shed { .. }));
    }

    #[test]
    fn unit_ops_roundtrip() {
        assert!(matches!(
            Request::parse(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn metrics_response_carries_text() {
        let line = Response::metrics("# HELP x y\n# TYPE x counter\nx 1\n").to_line();
        assert!(!line.contains('\n') || line.contains("\\n"));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"));
        assert!(v["metrics"].as_str().unwrap().contains("# TYPE x counter"));
    }

    #[test]
    fn unknown_op_is_an_error() {
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let r = Response::error("boom");
        let line = r.to_line();
        assert!(!line.contains('\n'));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["status"].as_str(), Some("error"));
        assert_eq!(v["message"].as_str(), Some("boom"));

        let line = Response::ShuttingDown.to_line();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["status"].as_str(), Some("shutting_down"));
    }

    #[test]
    fn options_default_and_explicit() {
        let opts: RequestOptions =
            serde_json::from_str(r#"{"simulate":true,"deadline_ms":250}"#).unwrap();
        assert!(opts.simulate);
        assert_eq!(opts.deadline_ms, Some(250));
        assert_eq!(opts.debug_sleep_ms, None);
        assert!(!opts.debug_panic);
        assert!(!opts.trace);

        let opts: RequestOptions = serde_json::from_str(r#"{"trace":true}"#).unwrap();
        assert!(opts.trace);
    }

    #[test]
    fn trace_ctx_roundtrip_and_absence_is_byte_stable() {
        // Absent context serializes to nothing: an untraced request line
        // is byte-identical to one built before trace_ctx existed.
        let line = serde_json::to_string(&RequestOptions::default()).unwrap();
        assert!(!line.contains("trace_ctx"), "{line}");

        let opts: RequestOptions = serde_json::from_str(
            r#"{"trace_ctx":{"trace_id":"00deadbeef001234",
                "hops":[{"tier":"gateway","sent_at_us":42}]}}"#,
        )
        .unwrap();
        let ctx = opts.trace_ctx.as_ref().unwrap();
        assert_eq!(ctx.trace_id, "00deadbeef001234");
        assert_eq!(ctx.hops.len(), 1);
        assert_eq!(ctx.hops[0].tier, "gateway");
        assert_eq!(ctx.hops[0].sent_at_us, 42);
        let back: RequestOptions =
            serde_json::from_str(&serde_json::to_string(&opts).unwrap()).unwrap();
        assert_eq!(back, opts);
    }

    #[test]
    fn journal_op_and_timing_block_roundtrip() {
        assert!(matches!(
            Request::parse(r#"{"op":"journal"}"#).unwrap(),
            Request::Journal
        ));
        let line = Response::journal(JournalBody {
            source: "gateway".into(),
            spans: vec![SpanRecord {
                trace_id: "00deadbeef001234".into(),
                name: "request".into(),
                start_us: 0,
                dur_us: 1200,
                detail: String::new(),
            }],
        })
        .to_line();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"));
        assert_eq!(v["journal"]["source"].as_str(), Some("gateway"));
        assert_eq!(v["journal"]["spans"][0]["dur_us"].as_u64(), Some(1200));
        // empty detail is elided from the wire
        assert!(!line.contains("detail"), "{line}");

        let timing = TimingBody {
            trace_id: "00deadbeef001234".into(),
            hops: vec![],
            serve: Some(ServeTiming {
                total_us: 900,
                parse_us: 10,
                queue_us: 100,
                compute_us: 700,
                cache: "computed".into(),
            }),
            gateway: None,
        };
        let line = Response::hello(HelloBody {
            service: "hetsched-serve".into(),
            version: "0".into(),
            workers: 1,
            queue_capacity: 1,
        })
        .with_timing(timing)
        .to_line();
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["timing"]["serve"]["compute_us"].as_u64(), Some(700));
        assert_eq!(v["timing"]["serve"]["cache"].as_str(), Some("computed"));
        // with_timing leaves non-ok statuses untouched
        let line = Response::error("boom").with_timing(TimingBody {
            trace_id: "x".into(),
            hops: vec![],
            serve: None,
            gateway: None,
        });
        assert!(!line.to_line().contains("timing"));
    }
}
