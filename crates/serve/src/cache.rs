//! Memoization cache: a fixed-capacity LRU map from content fingerprints
//! to schedule payloads.
//!
//! Implemented as a `HashMap` from key to slot index plus a slab-backed
//! intrusive doubly-linked list ordering slots from most- to
//! least-recently used — O(1) hit, insert, and eviction with no per-access
//! allocation. The service wraps one instance in a `parking_lot::Mutex`;
//! the structure itself is single-threaded.

use std::collections::HashMap;

const NONE: usize = usize::MAX;

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map keyed by `u64` fingerprints.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V> LruCache<V> {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NONE;
        self.slots[idx].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    /// Look up `key`, promoting it to most-recently used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let idx = *self.map.get(&key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slots[idx].value)
    }

    /// Insert or replace `key`, evicting the least-recently-used entry if
    /// the cache is full. Returns the evicted key, if any — the service
    /// layer uses this to invalidate derived caches (the wire-level reply
    /// cache bumps its epoch on every eviction).
    pub fn insert(&mut self, key: u64, value: V) -> Option<u64> {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE);
            self.unlink(lru);
            let key = self.slots[lru].key;
            self.map.remove(&key);
            self.free.push(lru);
            evicted = Some(key);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_mru_to_lru<V>(c: &LruCache<V>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = c.head;
        while cur != NONE {
            out.push(c.slots[cur].key);
            cur = c.slots[cur].next;
        }
        out
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(keys_mru_to_lru(&c), vec![1, 3, 2]);
        assert_eq!(c.get(9), None);
    }

    #[test]
    fn eviction_is_lru() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.insert(2, 20), None);
        c.get(1); // 2 becomes LRU
        assert_eq!(c.insert(3, 30), Some(2), "eviction reports the key");
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&10));
        assert_eq!(c.get(3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_updates_value_and_order() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.insert(1, "a2"), None, "replacement never evicts");
        assert_eq!(c.get(1), Some(&"a2"));
        c.insert(3, "c"); // evicts 2, not 1
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&"a2"));
    }

    #[test]
    fn slab_reuse_after_heavy_churn() {
        let mut c = LruCache::new(4);
        for k in 0..1000u64 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 4);
        assert!(c.slots.len() <= 5, "slab grew: {}", c.slots.len());
        for k in 996..1000 {
            assert_eq!(c.get(k), Some(&k));
        }
    }
}
