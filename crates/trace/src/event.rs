//! The trace data model: structured events, engine counters, and phase
//! spans, all plain serde-serializable values.
//!
//! Identifiers are raw integers rather than the `TaskId`/`ProcId` newtypes
//! so this crate stays a leaf below `hetsched-dag`/`hetsched-platform`
//! (everything in the workspace can depend on it without cycles).

use serde::{Deserialize, Serialize};

/// One EFT candidate evaluated for a task: the start/finish the task would
/// get on `proc` given its data-ready time there.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Processor index.
    pub proc: u32,
    /// Data-ready time of the task on `proc`.
    pub ready: f64,
    /// Earliest feasible start on `proc` (gap search applied).
    pub start: f64,
    /// Resulting finish time (`start` + execution time on `proc`).
    pub finish: f64,
}

/// A structured scheduler event.
///
/// Serialized internally tagged as `{"event": "...", ...}` so NDJSON
/// decision logs are self-describing line by line.
///
/// The first two variants are emitted *in decision order* from inside the
/// scheduling loops (including speculative evaluations made by lookahead /
/// duplication / search schedulers); [`Event::Placed`] records are
/// synthesized from the final schedule — exactly one per committed slot —
/// so their count always equals the number of scheduled task copies, no
/// matter how much speculation the algorithm performed along the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum Event {
    /// A list scheduler picked the next task to place.
    TaskSelected {
        /// 0-based position in the scheduling order.
        step: u64,
        /// Task index.
        task: u32,
        /// Priority that ordered the task (e.g. its upward rank).
        priority: f64,
    },
    /// The EFT engine chose a processor for a task after evaluating every
    /// candidate.
    EftDecision {
        /// Task index.
        task: u32,
        /// Chosen processor index.
        proc: u32,
        /// Start time on the chosen processor.
        start: f64,
        /// Finish time on the chosen processor.
        finish: f64,
        /// Whether the chosen start falls before the processor's current
        /// timeline end — i.e. the insertion policy found a gap.
        gap_used: bool,
        /// Every candidate evaluated, in processor order.
        candidates: Vec<Candidate>,
    },
    /// A slot of the final schedule (synthesized post-run, in start-time
    /// order; exactly one per committed primary or duplicate copy).
    Placed {
        /// 0-based position in start-time order over all final slots.
        step: u64,
        /// Task index.
        task: u32,
        /// Processor index.
        proc: u32,
        /// Slot start time.
        start: f64,
        /// Slot finish time.
        finish: f64,
        /// Whether this slot is a duplicate copy.
        duplicate: bool,
    },
}

impl Event {
    /// Whether this is a [`Event::Placed`] record.
    pub fn is_placement(&self) -> bool {
        matches!(self, Event::Placed { .. })
    }
}

/// Monotonic counters over the engine internals of one capture.
///
/// Counters observe the optimised engine's control flow (they are bumped
/// from the hot paths only when tracing is enabled); the reference engine
/// bumps the query-level counters but not the path-split ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// `best_eft` queries answered (one per task placement decision).
    pub eft_best_queries: u64,
    /// `eft_candidates_into` queries answered.
    pub eft_candidate_queries: u64,
    /// Data-ready frontiers built (one covers all processors — frontier
    /// reuse means this stays far below `procs × placements`).
    pub drt_frontier_builds: u64,
    /// Predecessors folded through the single-copy fast path.
    pub drt_single_copy_preds: u64,
    /// Predecessors folded through the multi-copy (duplication) path.
    pub drt_multi_copy_preds: u64,
    /// Insertion queries answered O(1) by the cached no-gap-fits bound.
    pub gap_fast_rejects: u64,
    /// Insertion queries answered by the cached prefix-skip search.
    pub gap_cached_searches: u64,
    /// Insertion queries that fell back to the full reference scan
    /// (cacheless schedule or reference-engine mode).
    pub gap_full_scans: u64,
    /// Append-policy (non-insertion) queries.
    pub append_queries: u64,
    /// Slots committed into timelines (speculative trials included).
    pub timeline_inserts: u64,
    /// Rank vectors served from a `ProblemInstance` memo without
    /// recomputation (`ProblemInstance` lives in `hetsched-core`).
    #[serde(default)]
    pub rank_memo_hits: u64,
    /// Rank vectors computed and inserted into an instance memo.
    #[serde(default)]
    pub rank_memo_misses: u64,
}

/// One named wall-clock phase of a scheduling run (e.g. rank computation
/// vs the EFT loop), relative to the start of the capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name (e.g. `"rank"`, `"eft_loop"`).
    pub name: String,
    /// Offset of the phase start from the capture start, nanoseconds.
    pub start_ns: u64,
    /// Phase duration, nanoseconds.
    pub dur_ns: u64,
}

/// Everything recorded by one [`crate::capture`] run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Structured events in emission order (placements last, synthesized).
    pub events: Vec<Event>,
    /// Engine counters.
    pub counters: Counters,
    /// Wall-clock phase spans, in completion order.
    pub phases: Vec<PhaseSpan>,
    /// Total wall time of the capture, nanoseconds.
    pub wall_ns: u64,
}

impl Trace {
    /// Number of [`Event::Placed`] records (committed slots).
    pub fn num_placements(&self) -> usize {
        self.events.iter().filter(|e| e.is_placement()).count()
    }

    /// Number of [`Event::Placed`] records that are primary (non-duplicate)
    /// copies — equals the number of scheduled tasks for a complete
    /// schedule.
    pub fn num_primary_placements(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Placed {
                        duplicate: false,
                        ..
                    }
                )
            })
            .count()
    }
}
