//! NDJSON exporters: one self-describing JSON object per line.
//!
//! Two views of the same [`Trace`]:
//!
//! * [`event_log`] — every recorded event in emission order (selection and
//!   EFT decisions first, the synthesized placement log last). This is the
//!   full story of a run, speculation included.
//! * [`decision_log`] — the placement decisions only: exactly one
//!   [`Event::Placed`] line per committed slot, so the line count equals
//!   scheduled tasks plus duplicates regardless of how much speculative
//!   work the algorithm did.

use crate::{Event, Trace};

fn lines<'a>(events: impl Iterator<Item = &'a Event>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events serialize infallibly"));
        out.push('\n');
    }
    out
}

/// Render every event of `trace` as NDJSON, one object per line.
pub fn event_log(trace: &Trace) -> String {
    lines(trace.events.iter())
}

/// Render only the placement decisions ([`Event::Placed`]) as NDJSON.
pub fn decision_log(trace: &Trace) -> String {
    lines(trace.events.iter().filter(|e| e.is_placement()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_split_events_correctly() {
        let mut t = Trace::default();
        t.events.push(Event::TaskSelected {
            step: 0,
            task: 0,
            priority: 3.5,
        });
        t.events.push(Event::Placed {
            step: 0,
            task: 0,
            proc: 1,
            start: 0.0,
            finish: 1.0,
            duplicate: false,
        });
        let full = event_log(&t);
        let decisions = decision_log(&t);
        assert_eq!(full.lines().count(), 2);
        assert_eq!(decisions.lines().count(), 1);
        for line in full.lines() {
            let e: Event = serde_json::from_str(line).unwrap();
            assert!(matches!(
                e,
                Event::TaskSelected { .. } | Event::Placed { .. }
            ));
        }
        assert!(decisions.contains("\"event\":\"placed\""));
    }
}
