//! Chrome-trace-format exporter.
//!
//! Renders a [`Trace`] as a JSON document in the Trace Event Format that
//! `chrome://tracing` and Perfetto load directly:
//!
//! * **pid 0 — "schedule"**: one thread lane per processor (named
//!   `proc 0`, `proc 1`, ...), with one complete (`"ph":"X"`) event per
//!   committed slot, placed at the slot's start/duration. Times are
//!   exported in microseconds (the format's unit), i.e. schedule seconds
//!   × 1e6.
//! * **pid 1 — "profile"**: one lane carrying the wall-clock
//!   [`crate::PhaseSpan`]s of the capture (rank vs EFT loop etc.), plus a global
//!   instant event holding the engine [`crate::Counters`] in its `args`.
//!
//! The slot lanes are derived exclusively from the synthesized
//! [`Event::Placed`] records, so [`lanes`] — the exact busy intervals the
//! exporter draws — can be cross-checked against renderers that read the
//! schedule directly (the Gantt SVG renderer does exactly that in its
//! tests).

use serde::Serialize;

use crate::{Counters, Event, Trace};

/// Per-processor busy intervals exactly as the Chrome-trace exporter
/// renders them: `lanes(trace, n)[p]` lists the `(start, finish)` pairs
/// (schedule seconds, sorted by start) of every slot placed on processor
/// `p`. Processors beyond `n_procs - 1` appearing in the trace are
/// ignored; empty processors yield empty lanes.
pub fn lanes(trace: &Trace, n_procs: usize) -> Vec<Vec<(f64, f64)>> {
    let mut out = vec![Vec::new(); n_procs];
    for e in &trace.events {
        if let Event::Placed {
            proc,
            start,
            finish,
            ..
        } = *e
        {
            if let Some(lane) = out.get_mut(proc as usize) {
                lane.push((start, finish));
            }
        }
    }
    for lane in &mut out {
        lane.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }
    out
}

#[derive(Serialize)]
struct NameArgs {
    name: String,
}

#[derive(Serialize)]
struct MetaEvent {
    name: String,
    ph: String,
    pid: u32,
    tid: u32,
    args: NameArgs,
}

#[derive(Serialize)]
struct SlotArgs {
    task: u32,
    step: u64,
    duplicate: bool,
}

#[derive(Serialize)]
struct SlotEvent {
    name: String,
    cat: String,
    ph: String,
    pid: u32,
    tid: u32,
    ts: f64,
    dur: f64,
    args: SlotArgs,
}

#[derive(Serialize)]
struct PhaseEvent {
    name: String,
    cat: String,
    ph: String,
    pid: u32,
    tid: u32,
    ts: f64,
    dur: f64,
}

#[derive(Serialize)]
struct CountersEvent {
    name: String,
    ph: String,
    s: String,
    pid: u32,
    tid: u32,
    ts: f64,
    args: Counters,
}

fn meta(name: &str, pid: u32, tid: u32, value: String) -> MetaEvent {
    MetaEvent {
        name: name.to_string(),
        ph: "M".to_string(),
        pid,
        tid,
        args: NameArgs { name: value },
    }
}

/// Serialize `trace` as a Chrome-trace JSON document (object form,
/// `{"traceEvents": [...]}`) with one lane per processor.
///
/// `n_procs` fixes the lane count so idle processors still get a named
/// lane — the schedule visualisation then always shows the full machine.
pub fn to_chrome_trace(trace: &Trace, n_procs: usize) -> String {
    fn json<T: Serialize>(v: &T) -> String {
        serde_json::to_string(v).expect("trace events serialize infallibly")
    }
    let mut events: Vec<String> = Vec::new();

    events.push(json(&meta("process_name", 0, 0, "schedule".to_string())));
    for p in 0..n_procs {
        events.push(json(&meta("thread_name", 0, p as u32, format!("proc {p}"))));
    }
    for e in &trace.events {
        if let Event::Placed {
            step,
            task,
            proc,
            start,
            finish,
            duplicate,
        } = *e
        {
            let mark = if duplicate { "*" } else { "" };
            events.push(json(&SlotEvent {
                name: format!("t{task}{mark}"),
                cat: "slot".to_string(),
                ph: "X".to_string(),
                pid: 0,
                tid: proc,
                ts: start * 1e6,
                dur: (finish - start) * 1e6,
                args: SlotArgs {
                    task,
                    step,
                    duplicate,
                },
            }));
        }
    }

    events.push(json(&meta("process_name", 1, 0, "profile".to_string())));
    events.push(json(&meta("thread_name", 1, 0, "phases".to_string())));
    for ph in &trace.phases {
        events.push(json(&PhaseEvent {
            name: ph.name.clone(),
            cat: "phase".to_string(),
            ph: "X".to_string(),
            pid: 1,
            tid: 0,
            ts: ph.start_ns as f64 / 1e3,
            dur: ph.dur_ns as f64 / 1e3,
        }));
    }
    events.push(json(&CountersEvent {
        name: "engine_counters".to_string(),
        ph: "i".to_string(),
        s: "g".to_string(),
        pid: 1,
        tid: 0,
        ts: 0.0,
        args: trace.counters,
    }));

    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.events.push(Event::Placed {
            step: 0,
            task: 0,
            proc: 0,
            start: 0.0,
            finish: 2.0,
            duplicate: false,
        });
        t.events.push(Event::Placed {
            step: 1,
            task: 1,
            proc: 1,
            start: 2.5,
            finish: 3.5,
            duplicate: true,
        });
        t.counters.timeline_inserts = 2;
        t.phases.push(crate::PhaseSpan {
            name: "rank".to_string(),
            start_ns: 1000,
            dur_ns: 500,
        });
        t
    }

    #[test]
    fn lanes_group_and_sort_placements() {
        let mut t = sample_trace();
        t.events.push(Event::Placed {
            step: 2,
            task: 2,
            proc: 0,
            start: 3.0,
            finish: 4.0,
            duplicate: false,
        });
        // out-of-order arrival on proc 0
        t.events.swap(0, 2);
        let l = lanes(&t, 3);
        assert_eq!(l.len(), 3);
        assert_eq!(l[0], vec![(0.0, 2.0), (3.0, 4.0)]);
        assert_eq!(l[1], vec![(2.5, 3.5)]);
        assert!(l[2].is_empty());
    }

    #[test]
    fn chrome_trace_has_one_named_lane_per_processor() {
        let doc = to_chrome_trace(&sample_trace(), 3);
        assert!(doc.starts_with("{\"traceEvents\":["));
        for p in 0..3 {
            assert!(doc.contains(&format!("\"name\":\"proc {p}\"")), "{doc}");
        }
        // slot events land on the right lanes with µs timestamps
        assert!(doc.contains("\"name\":\"t0\""), "{doc}");
        assert!(doc.contains("\"name\":\"t1*\""), "{doc}");
        assert!(doc.contains("\"ts\":2500000.0"), "{doc}");
        // profile pid carries phases and counters
        assert!(doc.contains("\"name\":\"rank\""), "{doc}");
        assert!(doc.contains("\"engine_counters\""), "{doc}");
        assert!(doc.contains("\"timeline_inserts\":2"), "{doc}");
    }

    #[test]
    fn chrome_trace_parses_as_json() {
        let doc = to_chrome_trace(&sample_trace(), 2);
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = v
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents array");
        assert!(events.len() >= 5);
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(serde_json::Value::as_str).is_some()));
    }
}
