//! # hetsched-trace
//!
//! Zero-cost-when-disabled structured tracing for the scheduling engine.
//!
//! The crate is a leaf: it knows nothing about DAGs, systems, or
//! schedules. Instrumented code (the `hetsched-core` engine, the
//! schedulers, the daemon) calls the free functions below; unless a
//! [`capture`] is active on the current thread every call is a single
//! thread-local boolean read followed by a predictable untaken branch —
//! no allocation, no clock read, no event construction ([`emit`] takes a
//! closure precisely so the event is never built when disabled).
//!
//! ## Model
//!
//! * [`capture`] runs a closure with tracing enabled on this thread and
//!   returns whatever was recorded as a [`Trace`]: structured [`Event`]s,
//!   monotonic engine [`Counters`], and wall-clock [`PhaseSpan`]s.
//! * [`emit`] appends an event, [`counters`] updates the counters, and
//!   [`span`] times a phase via an RAII guard.
//! * Exporters turn a [`Trace`] into an NDJSON decision log
//!   ([`ndjson`]) or a Chrome-trace JSON document loadable in
//!   `chrome://tracing` / Perfetto ([`chrome`]).
//!
//! ## Zero-perturbation guarantee
//!
//! Instrumentation only ever *reads* scheduler state; enabling tracing
//! must not change a single bit of any schedule. The workspace enforces
//! this the same way the optimised engine is held to the reference
//! semantics: property tests schedule every algorithm with tracing on and
//! off and compare the schedules byte for byte.
//!
//! Captures are per-thread and do not nest meaningfully: starting a
//! capture while one is active shadows the outer capture until the inner
//! one finishes (the outer then resumes recording).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
pub mod ndjson;

pub use event::{Candidate, Counters, Event, PhaseSpan, Trace};

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Recording state of an in-progress capture on this thread.
struct ActiveTrace {
    t0: Instant,
    events: Vec<Event>,
    counters: Counters,
    phases: Vec<PhaseSpan>,
}

thread_local! {
    /// Fast-path gate: `true` iff a capture is active on this thread.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    /// The collector behind the gate. Kept separate so the hot check is a
    /// plain `Cell` read with no `RefCell` bookkeeping.
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Whether a trace capture is active on the current thread.
///
/// This is the only cost tracing adds to untraced runs: hot paths read
/// this boolean and skip all instrumentation when it is `false`.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Apply `update` to the live collector, if any.
#[inline]
fn with_active(update: impl FnOnce(&mut ActiveTrace)) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            update(t);
        }
    });
}

/// Record a structured event. The closure is only invoked (and the event
/// only constructed) when a capture is active.
#[inline]
pub fn emit(make: impl FnOnce() -> Event) {
    if enabled() {
        with_active(|t| {
            let e = make();
            t.events.push(e);
        });
    }
}

/// Update the engine counters of the live capture, e.g.
/// `counters(|c| c.timeline_inserts += 1)`. No-op when disabled.
#[inline]
pub fn counters(update: impl FnOnce(&mut Counters)) {
    if enabled() {
        with_active(|t| update(&mut t.counters));
    }
}

/// RAII guard returned by [`span`]: records a [`PhaseSpan`] when dropped
/// (only if it was created while a capture was active).
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.start {
            let ended = Instant::now();
            with_active(|t| {
                let start_ns = saturating_ns(t.t0, started);
                let dur_ns = saturating_ns(started, ended);
                t.phases.push(PhaseSpan {
                    name: self.name.to_string(),
                    start_ns,
                    dur_ns,
                });
            });
        }
    }
}

/// Nanoseconds from `a` to `b` (0 if `b` precedes `a`), clamped to `u64`.
fn saturating_ns(a: Instant, b: Instant) -> u64 {
    u64::try_from(b.saturating_duration_since(a).as_nanos()).unwrap_or(u64::MAX)
}

/// Start timing a named phase; the span is recorded when the returned
/// guard drops. When no capture is active the guard is inert (no clock
/// read at either end).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Run `f` with tracing enabled on this thread and return its result
/// together with everything recorded.
///
/// The previous tracing state is restored on exit, including on unwind
/// (a panicking `f` discards the partial capture).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    struct Restore {
        prev: Option<ActiveTrace>,
        prev_enabled: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
            ENABLED.with(|c| c.set(self.prev_enabled));
        }
    }

    let fresh = ActiveTrace {
        t0: Instant::now(),
        events: Vec::new(),
        counters: Counters::default(),
        phases: Vec::new(),
    };
    let restore = Restore {
        prev: ACTIVE.with(|a| a.borrow_mut().replace(fresh)),
        prev_enabled: ENABLED.with(|c| c.replace(true)),
    };

    let out = f();

    let active = ACTIVE
        .with(|a| a.borrow_mut().take())
        .expect("capture collector present: only `capture` itself removes it");
    drop(restore);
    let wall_ns = saturating_ns(active.t0, Instant::now());
    (
        out,
        Trace {
            events: active.events,
            counters: active.counters,
            phases: active.phases,
            wall_ns,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(step: u64, task: u32, start: f64, finish: f64, duplicate: bool) -> Event {
        Event::Placed {
            step,
            task,
            proc: 0,
            start,
            finish,
            duplicate,
        }
    }

    #[test]
    fn disabled_by_default_and_all_calls_are_inert() {
        assert!(!enabled());
        emit(|| unreachable!("emit must not build events when disabled"));
        counters(|_| unreachable!("counters must not run when disabled"));
        let s = span("idle");
        assert!(s.start.is_none());
        drop(s);
    }

    #[test]
    fn capture_records_events_counters_and_spans() {
        let (value, trace) = capture(|| {
            assert!(enabled());
            emit(|| placed(0, 3, 0.0, 1.0, false));
            emit(|| placed(1, 4, 1.0, 2.0, true));
            counters(|c| c.timeline_inserts += 2);
            {
                let _s = span("phase_a");
                std::hint::black_box(());
            }
            42
        });
        assert!(!enabled());
        assert_eq!(value, 42);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.num_placements(), 2);
        assert_eq!(trace.num_primary_placements(), 1);
        assert_eq!(trace.counters.timeline_inserts, 2);
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.phases[0].name, "phase_a");
    }

    #[test]
    fn nested_capture_shadows_then_restores_outer() {
        let ((), outer) = capture(|| {
            emit(|| placed(0, 0, 0.0, 1.0, false));
            let ((), inner) = capture(|| {
                emit(|| placed(0, 1, 0.0, 1.0, false));
            });
            assert_eq!(inner.events.len(), 1);
            // the outer capture resumes
            emit(|| placed(1, 2, 1.0, 2.0, false));
        });
        assert_eq!(outer.events.len(), 2);
    }

    #[test]
    fn panic_inside_capture_restores_disabled_state() {
        let r = std::panic::catch_unwind(|| {
            capture(|| panic!("boom"));
        });
        assert!(r.is_err());
        assert!(!enabled());
        // a fresh capture still works
        let ((), t) = capture(|| emit(|| placed(0, 0, 0.0, 1.0, false)));
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = Event::EftDecision {
            task: 7,
            proc: 1,
            start: 2.5,
            finish: 4.0,
            gap_used: true,
            candidates: vec![Candidate {
                proc: 0,
                ready: 1.0,
                start: 3.0,
                finish: 5.0,
            }],
        };
        let s = serde_json::to_string(&e).unwrap();
        assert!(s.contains("\"event\":\"eft_decision\""), "{s}");
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
