//! Shared fixtures for the Criterion benchmarks: deterministic instances
//! of every workload class at the sizes the benches sweep.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_dag::Dag;
use hetsched_platform::{EtcParams, System};
use hetsched_workloads::{fft, gauss, laplace, random_dag, RandomDagParams};

/// A named, reproducible benchmark instance.
pub struct Instance {
    /// Display label (used as the Criterion bench id component).
    pub label: String,
    /// The task graph.
    pub dag: Dag,
    /// The target system.
    pub sys: System,
}

/// Build a heterogeneous system for `dag` with the bench-standard
/// parameters (range-based β = 1.0, unit network).
pub fn het_system(dag: &Dag, procs: usize, seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    System::heterogeneous_random(dag, procs, &EtcParams::range_based(1.0), &mut rng)
}

/// Random-DAG instance of size `n` with the given CCR.
pub fn random_instance(n: usize, ccr: f64, procs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
    let sys = het_system(&dag, procs, seed ^ 0x5e5);
    Instance {
        label: format!("random-n{n}-ccr{ccr}"),
        dag,
        sys,
    }
}

/// Gaussian-elimination instance for matrix size `m`.
pub fn gauss_instance(m: usize, ccr: f64, procs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = gauss::gaussian_elimination(m, ccr, &mut rng);
    let sys = het_system(&dag, procs, seed ^ 0x9a5);
    Instance {
        label: format!("gauss-m{m}"),
        dag,
        sys,
    }
}

/// FFT butterfly instance for `p` points.
pub fn fft_instance(p: usize, ccr: f64, procs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = fft::fft_butterfly(p, ccr, &mut rng);
    let sys = het_system(&dag, procs, seed ^ 0xff7);
    Instance {
        label: format!("fft-p{p}"),
        dag,
        sys,
    }
}

/// Laplace wavefront instance for grid size `g`.
pub fn laplace_instance(g: usize, ccr: f64, procs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = laplace::laplace_wavefront(g, ccr, &mut rng);
    let sys = het_system(&dag, procs, seed ^ 0x1a9);
    Instance {
        label: format!("laplace-g{g}"),
        dag,
        sys,
    }
}

/// Homogeneous random instance (flat ETC, unit network).
pub fn homogeneous_instance(n: usize, ccr: f64, procs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = random_dag(&RandomDagParams::new(n, 1.0, ccr), &mut rng);
    let sys = System::homogeneous_unit(&dag, procs);
    Instance {
        label: format!("hom-n{n}-ccr{ccr}"),
        dag,
        sys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_reproducible() {
        let a = random_instance(50, 1.0, 8, 7);
        let b = random_instance(50, 1.0, 8, 7);
        assert_eq!(a.dag.num_edges(), b.dag.num_edges());
        assert_eq!(
            a.sys
                .exec_time(hetsched_dag::TaskId(3), hetsched_platform::ProcId(2)),
            b.sys
                .exec_time(hetsched_dag::TaskId(3), hetsched_platform::ProcId(2))
        );
    }

    #[test]
    fn all_fixture_classes_build() {
        assert_eq!(gauss_instance(8, 1.0, 4, 1).dag.num_tasks(), 35);
        assert_eq!(fft_instance(16, 1.0, 4, 1).dag.num_tasks(), 80);
        assert_eq!(laplace_instance(6, 1.0, 4, 1).dag.num_tasks(), 36);
        assert!(homogeneous_instance(30, 0.5, 4, 1).sys.is_homogeneous());
    }
}
