//! Per-algorithm scheduling time on representative instances — the bench
//! behind fig10 (scheduler running time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hetsched_bench::{fft_instance, gauss_instance, random_instance};
use hetsched_core::algorithms::all_heterogeneous;

fn bench_schedulers(c: &mut Criterion) {
    let instances = vec![
        random_instance(100, 1.0, 8, 11),
        random_instance(400, 1.0, 8, 12),
        gauss_instance(15, 1.0, 8, 13),
        fft_instance(64, 1.0, 8, 14),
    ];
    let mut g = c.benchmark_group("schedulers");
    g.sample_size(10);
    for inst in &instances {
        for alg in all_heterogeneous() {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), &inst.label),
                inst,
                |b, inst| {
                    b.iter(|| {
                        let s = alg.schedule(black_box(&inst.dag), black_box(&inst.sys));
                        black_box(s.makespan())
                    })
                },
            );
        }
    }
    g.finish();
}

/// The parallel search layer: GA and DUP-HEFT at jobs = 1 vs 4. The
/// schedules are bit-identical at both settings, so the delta is pure
/// wall-clock — the fan-out win on a multi-core host, pool overhead on a
/// single core.
fn bench_search_jobs(c: &mut Criterion) {
    use hetsched_core::algorithms::{DupHeft, Genetic};
    use hetsched_core::par::with_jobs;
    use hetsched_core::Scheduler;

    let inst = random_instance(200, 1.0, 8, 15);
    let ga = Genetic {
        population: 16,
        generations: 12,
        mutation_rate: 0.08,
        seed: 21,
    };
    let dup = DupHeft::new();
    let mut g = c.benchmark_group("search-jobs");
    g.sample_size(10);
    for jobs in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("GA", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                with_jobs(jobs, || {
                    let s = ga.schedule(black_box(&inst.dag), black_box(&inst.sys));
                    black_box(s.makespan())
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("DUP-HEFT", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                with_jobs(jobs, || {
                    let s = dup.schedule(black_box(&inst.dag), black_box(&inst.sys));
                    black_box(s.makespan())
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_search_jobs);
criterion_main!(benches);
