//! Per-algorithm scheduling time on representative instances — the bench
//! behind fig10 (scheduler running time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hetsched_bench::{fft_instance, gauss_instance, random_instance};
use hetsched_core::algorithms::all_heterogeneous;

fn bench_schedulers(c: &mut Criterion) {
    let instances = vec![
        random_instance(100, 1.0, 8, 11),
        random_instance(400, 1.0, 8, 12),
        gauss_instance(15, 1.0, 8, 13),
        fft_instance(64, 1.0, 8, 14),
    ];
    let mut g = c.benchmark_group("schedulers");
    g.sample_size(10);
    for inst in &instances {
        for alg in all_heterogeneous() {
            g.bench_with_input(
                BenchmarkId::new(alg.name(), &inst.label),
                inst,
                |b, inst| {
                    b.iter(|| {
                        let s = alg.schedule(black_box(&inst.dag), black_box(&inst.sys));
                        black_box(s.makespan())
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
