//! Micro-benchmarks of the scheduling core: rank computation, timeline
//! insertion, validation, DAG generation, reachability, and simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_bench::random_instance;
use hetsched_core::algorithms::Heft;
use hetsched_core::rank::upward_rank;
use hetsched_core::{CostAggregation, ProblemInstance, Scheduler};
use hetsched_dag::analysis::Reachability;
use hetsched_sim::{simulate, SimConfig};
use hetsched_workloads::{random_dag, RandomDagParams};

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("upward_rank");
    for n in [100usize, 400, 1600] {
        let inst = random_instance(n, 1.0, 8, 21);
        // fresh: instance construction + the actual rank fold
        g.bench_with_input(BenchmarkId::new("fresh", n), &inst, |b, inst| {
            b.iter(|| {
                let pi = ProblemInstance::from_refs(&inst.dag, &inst.sys);
                black_box(upward_rank(&pi, CostAggregation::Mean))
            })
        });
        // memoized: what every scheduler after the first pays
        let pi = ProblemInstance::from_refs(&inst.dag, &inst.sys);
        g.bench_with_input(BenchmarkId::new("memoized", n), &pi, |b, pi| {
            b.iter(|| black_box(upward_rank(pi, CostAggregation::Mean)))
        });
    }
    g.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("validate");
    for n in [100usize, 400] {
        let inst = random_instance(n, 1.0, 8, 22);
        let sched = Heft::new().schedule(&inst.dag, &inst.sys);
        g.bench_with_input(BenchmarkId::from_parameter(n), &sched, |b, sched| {
            b.iter(|| black_box(hetsched_core::validate(&inst.dag, &inst.sys, sched)))
        });
    }
    g.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    for n in [100usize, 400] {
        let inst = random_instance(n, 1.0, 8, 23);
        let sched = Heft::new().schedule(&inst.dag, &inst.sys);
        g.bench_with_input(BenchmarkId::from_parameter(n), &sched, |b, sched| {
            b.iter(|| {
                black_box(simulate(&inst.dag, &inst.sys, sched, &SimConfig::default()).makespan)
            })
        });
    }
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("random_dag");
    for n in [100usize, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(31);
                black_box(random_dag(&RandomDagParams::new(n, 1.0, 1.0), &mut rng))
            })
        });
    }
    g.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let mut g = c.benchmark_group("reachability");
    for n in [100usize, 400] {
        let inst = random_instance(n, 1.0, 8, 24);
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(Reachability::new(&inst.dag)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rank,
    bench_validate,
    bench_simulate,
    bench_generation,
    bench_reachability
);
criterion_main!(benches);
