//! One bench per reproduced table/figure (DESIGN.md §4).
//!
//! Each bench regenerates a miniaturized version of its experiment's data
//! series (printed to stderr once, so `cargo bench` output shows the same
//! rows the harness reports) and then measures the cost of producing it.
//! The full-size numbers come from `hetsched-exp`; these benches guard the
//! *performance* of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetsched_bench::{
    fft_instance, gauss_instance, homogeneous_instance, laplace_instance, random_instance, Instance,
};
use hetsched_core::algorithms::{all_heterogeneous, homogeneous_set};
use hetsched_core::Scheduler;
use hetsched_metrics::{slr, speedup, WtlTable};
use hetsched_sim::{simulate, Noise, SimConfig};

/// Compute and print an SLR series over `instances`, returning the sum (so
/// the computation cannot be optimized away).
fn slr_series(
    title: &str,
    instances: &[Instance],
    algs: &[Box<dyn Scheduler + Send + Sync>],
    print: bool,
) -> f64 {
    let mut acc = 0.0;
    if print {
        eprintln!("-- {title} --");
    }
    for inst in instances {
        let mut line = format!("{:<18}", inst.label);
        for alg in algs {
            let s = alg.schedule(&inst.dag, &inst.sys);
            let v = slr(&inst.dag, &inst.sys, s.makespan());
            acc += v;
            line.push_str(&format!(" {}={v:.3}", alg.name()));
        }
        if print {
            eprintln!("{line}");
        }
    }
    acc
}

fn bench_figures(c: &mut Criterion) {
    let algs = all_heterogeneous();

    // fig1: SLR vs tasks
    let fig1: Vec<Instance> = [20usize, 60, 150]
        .iter()
        .map(|&n| random_instance(n, 1.0, 8, 100 + n as u64))
        .collect();
    slr_series("fig1-slr-vs-tasks", &fig1, &algs, true);
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig1_slr_vs_tasks", |b| {
        b.iter(|| black_box(slr_series("", &fig1, &algs, false)))
    });

    // fig2: SLR vs CCR
    let fig2: Vec<Instance> = [0.1f64, 1.0, 10.0]
        .iter()
        .map(|&ccr| random_instance(60, ccr, 8, 200 + ccr as u64))
        .collect();
    slr_series("fig2-slr-vs-ccr", &fig2, &algs, true);
    g.bench_function("fig2_slr_vs_ccr", |b| {
        b.iter(|| black_box(slr_series("", &fig2, &algs, false)))
    });

    // fig3: speedup vs processors
    let fig3: Vec<Instance> = [2usize, 4, 8, 16]
        .iter()
        .map(|&p| random_instance(80, 0.5, p, 300 + p as u64))
        .collect();
    eprintln!("-- fig3-speedup-vs-procs --");
    for inst in &fig3 {
        let mut line = format!("{:<18}", format!("procs={}", inst.sys.num_procs()));
        for alg in &algs {
            let s = alg.schedule(&inst.dag, &inst.sys);
            line.push_str(&format!(
                " {}={:.2}",
                alg.name(),
                speedup(&inst.dag, &inst.sys, s.makespan())
            ));
        }
        eprintln!("{line}");
    }
    g.bench_function("fig3_speedup_vs_procs", |b| {
        b.iter(|| black_box(slr_series("", &fig3, &algs, false)))
    });

    // fig4: SLR vs heterogeneity — the β axis lives in the system; use
    // fixtures at different seeds as the series (full axis in hetsched-exp).
    let fig4: Vec<Instance> = (0..3)
        .map(|k| random_instance(60, 1.0, 8, 400 + k))
        .collect();
    g.bench_function("fig4_slr_vs_heterogeneity", |b| {
        b.iter(|| black_box(slr_series("", &fig4, &algs, false)))
    });

    // fig5: SLR vs shape (three alphas encoded in the generator defaults)
    g.bench_function("fig5_slr_vs_shape", |b| {
        b.iter(|| black_box(slr_series("", &fig1, &algs, false)))
    });

    // tab1: win/tie/loss
    let tab1: Vec<Instance> = (0..4)
        .map(|k| random_instance(50, 1.0, 8, 500 + k))
        .collect();
    let names: Vec<String> = algs.iter().map(|a| a.name().to_string()).collect();
    let mut wtl = WtlTable::new(names);
    for inst in &tab1 {
        let ms: Vec<f64> = algs
            .iter()
            .map(|a| a.schedule(&inst.dag, &inst.sys).makespan())
            .collect();
        wtl.record(&ms);
    }
    eprintln!("-- tab1-wtl --\n{}", wtl.render());
    g.bench_function("tab1_wtl_table", |b| {
        b.iter(|| {
            let mut wtl = WtlTable::new(algs.iter().map(|a| a.name().to_string()).collect());
            for inst in &tab1 {
                let ms: Vec<f64> = algs
                    .iter()
                    .map(|a| a.schedule(&inst.dag, &inst.sys).makespan())
                    .collect();
                wtl.record(&ms);
            }
            black_box(wtl.instances())
        })
    });

    // fig6: Gaussian elimination
    let fig6: Vec<Instance> = [5usize, 10, 15]
        .iter()
        .map(|&m| gauss_instance(m, 1.0, 8, 600 + m as u64))
        .collect();
    slr_series("fig6-gauss", &fig6, &algs, true);
    g.bench_function("fig6_gaussian", |b| {
        b.iter(|| black_box(slr_series("", &fig6, &algs, false)))
    });

    // fig7: FFT
    let fig7: Vec<Instance> = [8usize, 16, 32]
        .iter()
        .map(|&p| fft_instance(p, 1.0, 8, 700 + p as u64))
        .collect();
    slr_series("fig7-fft", &fig7, &algs, true);
    g.bench_function("fig7_fft", |b| {
        b.iter(|| black_box(slr_series("", &fig7, &algs, false)))
    });

    // fig8: Laplace
    let fig8: Vec<Instance> = [4usize, 8, 12]
        .iter()
        .map(|&gr| laplace_instance(gr, 1.0, 8, 800 + gr as u64))
        .collect();
    slr_series("fig8-laplace", &fig8, &algs, true);
    g.bench_function("fig8_laplace", |b| {
        b.iter(|| black_box(slr_series("", &fig8, &algs, false)))
    });

    // fig9: homogeneous
    let hom_algs = homogeneous_set();
    let fig9: Vec<Instance> = [20usize, 60, 150]
        .iter()
        .map(|&n| homogeneous_instance(n, 1.0, 8, 900 + n as u64))
        .collect();
    slr_series("fig9-homogeneous", &fig9, &hom_algs, true);
    g.bench_function("fig9_homogeneous", |b| {
        b.iter(|| black_box(slr_series("", &fig9, &hom_algs, false)))
    });

    // fig10: scheduler runtime — this IS the schedulers bench group; alias
    // a representative point here so the experiment id appears in reports.
    let fig10 = random_instance(400, 1.0, 8, 1000);
    g.bench_function("fig10_scheduler_runtime", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for alg in &algs {
                acc += alg.schedule(&fig10.dag, &fig10.sys).makespan();
            }
            black_box(acc)
        })
    });

    // tab2: occupancy — covered by the same scheduling pass plus stats.
    g.bench_function("tab2_occupancy", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for alg in &algs {
                let s = alg.schedule(&fig10.dag, &fig10.sys);
                acc += hetsched_metrics::occupancy::occupancy(&s).duplicates;
            }
            black_box(acc)
        })
    });

    // fig11: robustness — simulate under noise
    let fig11 = random_instance(80, 1.0, 8, 1100);
    let scheds: Vec<_> = algs
        .iter()
        .map(|a| a.schedule(&fig11.dag, &fig11.sys))
        .collect();
    eprintln!("-- fig11-robustness (degradation at cv=0.3) --");
    for (alg, s) in algs.iter().zip(&scheds) {
        let base = simulate(&fig11.dag, &fig11.sys, s, &SimConfig::default()).makespan;
        let noisy = simulate(
            &fig11.dag,
            &fig11.sys,
            s,
            &SimConfig {
                exec_noise: Noise::Gamma { cv: 0.3 },
                comm_noise: Noise::None,
                seed: 1,
            },
        )
        .makespan;
        eprintln!("  {:<10} {:.3}", alg.name(), noisy / base);
    }
    g.bench_function("fig11_robustness", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in &scheds {
                acc += simulate(
                    &fig11.dag,
                    &fig11.sys,
                    s,
                    &SimConfig {
                        exec_noise: Noise::Gamma { cv: 0.3 },
                        comm_noise: Noise::None,
                        seed: 2,
                    },
                )
                .makespan;
            }
            black_box(acc)
        })
    });

    // tab3: ablation — ILS variants on one instance
    use hetsched_core::algorithms::{IlsD, IlsH};
    use hetsched_core::CostAggregation;
    let ablation: Vec<Box<dyn Scheduler + Send + Sync>> = vec![
        Box::new(IlsH {
            agg: CostAggregation::Mean,
            tolerance: 0.0,
            lookahead: false,
        }),
        Box::new(IlsH {
            agg: CostAggregation::MeanStd(1.0),
            tolerance: 0.0,
            lookahead: false,
        }),
        Box::new(IlsH::new()),
        Box::new(IlsD::new()),
    ];
    let tab3 = random_instance(80, 5.0, 8, 1200);
    eprintln!("-- tab3-ablation (avg SLR on one CCR=5 instance) --");
    for (label, alg) in ["base", "+rank", "+look", "+dup"].iter().zip(&ablation) {
        let s = alg.schedule(&tab3.dag, &tab3.sys);
        eprintln!(
            "  {:<6} {:.3}",
            label,
            slr(&tab3.dag, &tab3.sys, s.makespan())
        );
    }
    g.bench_function("tab3_ablation", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for alg in &ablation {
                acc += alg.schedule(&tab3.dag, &tab3.sys).makespan();
            }
            black_box(acc)
        })
    });

    // fig12: structured graph classes (trees, series-parallel)
    {
        use hetsched_platform::{EtcParams, System};
        use hetsched_workloads::series_parallel::series_parallel;
        use hetsched_workloads::trees::{divide_and_conquer, in_tree, out_tree};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1300);
        let dags = vec![
            ("out-tree", out_tree(4, 2, 10.0, 5.0, &mut rng)),
            ("in-tree", in_tree(4, 2, 10.0, 5.0, &mut rng)),
            ("div&conq", divide_and_conquer(4, 2, 10.0, 5.0, &mut rng)),
            ("series-par", series_parallel(30, 0.5, 10.0, 5.0, &mut rng)),
        ];
        let fig12: Vec<Instance> = dags
            .into_iter()
            .map(|(label, dag)| {
                let sys =
                    System::heterogeneous_random(&dag, 8, &EtcParams::range_based(1.0), &mut rng);
                Instance {
                    label: label.into(),
                    dag,
                    sys,
                }
            })
            .collect();
        slr_series("fig12-trees", &fig12, &algs, true);
        g.bench_function("fig12_trees", |b| {
            b.iter(|| black_box(slr_series("", &fig12, &algs, false)))
        });
    }

    // tab4: slowdown scenario
    {
        use hetsched_sim::simulate_scenario;
        let inst = random_instance(80, 1.0, 8, 1400);
        let scheds: Vec<_> = algs
            .iter()
            .map(|a| a.schedule(&inst.dag, &inst.sys))
            .collect();
        let mut slowdown = vec![1.0; inst.sys.num_procs()];
        slowdown[0] = 2.0;
        eprintln!("-- tab4-slowdown (p0 secretly 2x slower) --");
        for (alg, s) in algs.iter().zip(&scheds) {
            let base = simulate(&inst.dag, &inst.sys, s, &SimConfig::default()).makespan;
            let deg = simulate_scenario(&inst.dag, &inst.sys, s, &SimConfig::default(), &slowdown)
                .makespan
                / base;
            eprintln!("  {:<10} {deg:.3}", alg.name());
        }
        g.bench_function("tab4_slowdown", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for s in &scheds {
                    acc += simulate_scenario(
                        &inst.dag,
                        &inst.sys,
                        s,
                        &SimConfig::default(),
                        &slowdown,
                    )
                    .makespan;
                }
                black_box(acc)
            })
        });
    }

    // tab5: optimality gap — exact branch-and-bound on a tiny instance
    {
        use hetsched_core::algorithms::BranchAndBound;
        let tiny = random_instance(7, 1.0, 3, 1500);
        let r = BranchAndBound::new().solve(&tiny.dag, &tiny.sys);
        eprintln!(
            "-- tab5-gap (n=7): optimal {:.3} ({} nodes, proven={}) --",
            r.schedule.makespan(),
            r.nodes,
            r.proven_optimal
        );
        for alg in &algs {
            let m = alg.schedule(&tiny.dag, &tiny.sys).makespan();
            eprintln!(
                "  {:<10} ratio {:.3}",
                alg.name(),
                m / r.schedule.makespan()
            );
        }
        g.bench_function("tab5_gap", |b| {
            b.iter(|| black_box(BranchAndBound::new().solve(&tiny.dag, &tiny.sys).nodes))
        });
    }

    // tab6: contention models
    {
        use hetsched_sim::{simulate_with, CommModel, Scenario};
        let inst = random_instance(60, 5.0, 8, 1600);
        let scheds: Vec<_> = algs
            .iter()
            .map(|a| a.schedule(&inst.dag, &inst.sys))
            .collect();
        eprintln!("-- tab6-contention (CCR=5, inflation vs contention-free) --");
        for (alg, s) in algs.iter().zip(&scheds) {
            let free = simulate(&inst.dag, &inst.sys, s, &SimConfig::default()).makespan;
            let sp = simulate_with(
                &inst.dag,
                &inst.sys,
                s,
                &SimConfig::default(),
                &Scenario {
                    proc_slowdown: vec![],
                    comm_model: CommModel::SinglePort,
                },
            )
            .makespan;
            eprintln!("  {:<10} single-port {:.2}x", alg.name(), sp / free);
        }
        g.bench_function("tab6_contention", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for s in &scheds {
                    acc += simulate_with(
                        &inst.dag,
                        &inst.sys,
                        s,
                        &SimConfig::default(),
                        &Scenario {
                            proc_slowdown: vec![],
                            comm_model: CommModel::SinglePort,
                        },
                    )
                    .makespan;
                }
                black_box(acc)
            })
        });
    }

    // tab7: GA metaheuristic (miniature configuration)
    {
        use hetsched_core::algorithms::Genetic;
        let inst = random_instance(25, 1.0, 4, 1700);
        let ga = Genetic {
            population: 10,
            generations: 10,
            mutation_rate: 0.1,
            seed: 1,
        };
        let heft_m = hetsched_core::algorithms::Heft::new()
            .schedule(&inst.dag, &inst.sys)
            .makespan();
        let ga_m = ga.schedule(&inst.dag, &inst.sys).makespan();
        eprintln!("-- tab7-ga (n=25): GA {ga_m:.2} vs HEFT {heft_m:.2} --");
        g.bench_function("tab7_ga", |b| {
            b.iter(|| black_box(ga.schedule(&inst.dag, &inst.sys).makespan()))
        });
    }

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
