//! User-facing computing-system interchange format.
//!
//! [`SystemSpec`] describes a target system in the terms a user thinks in
//! (identical machines, speed factors, or an explicit ETC matrix, plus a
//! network), serializes to/from JSON, and builds a validated [`System`]
//! for a given task graph on load.
//!
//! ```json
//! {
//!   "processors": { "kind": "speeds", "speeds": [2.0, 1.0, 1.0, 0.5] },
//!   "network": { "topology": "star", "startup": 0.05, "bandwidth": 4.0 }
//! }
//! ```

use serde::{Deserialize, Serialize};

use hetsched_dag::Dag;

use crate::etc::EtcMatrix;
use crate::network::{Network, Topology};
use crate::system::System;
use hetsched_dag::TaskId;

use crate::ProcId;

/// Processor-side description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ProcessorsSpec {
    /// `count` identical processors: task times equal nominal weights.
    Homogeneous {
        /// Number of processors.
        count: usize,
    },
    /// Related machines: one speed factor per processor
    /// (`time = weight / speed`).
    Speeds {
        /// Speed factor per processor (must be positive).
        speeds: Vec<f64>,
    },
    /// Explicit ETC matrix, task-major (`etc[task][proc]`).
    Etc {
        /// Execution time rows, one per task.
        etc: Vec<Vec<f64>>,
    },
}

/// Network-side description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Interconnect topology name: `fully_connected`, `bus`, `ring`,
    /// `star`, or `mesh` (with `rows`/`cols`).
    pub topology: String,
    /// Per-hop startup latency (seconds).
    #[serde(default)]
    pub startup: f64,
    /// Per-hop link bandwidth (data units per second).
    pub bandwidth: f64,
    /// Mesh rows (required only for `mesh`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rows: Option<usize>,
    /// Mesh columns (required only for `mesh`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cols: Option<usize>,
}

/// Full system description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Processor side.
    pub processors: ProcessorsSpec,
    /// Network side.
    pub network: NetworkSpec,
}

/// Errors building a [`System`] from a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A numeric field was out of range.
    Invalid(String),
    /// The ETC matrix shape disagrees with the DAG or itself.
    Shape(String),
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::Invalid(m) => write!(f, "invalid system spec: {m}"),
            SpecError::Shape(m) => write!(f, "system spec shape error: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SystemSpec {
    /// Number of processors the spec describes.
    pub fn num_procs(&self) -> usize {
        match &self.processors {
            ProcessorsSpec::Homogeneous { count } => *count,
            ProcessorsSpec::Speeds { speeds } => speeds.len(),
            ProcessorsSpec::Etc { etc } => etc.first().map_or(0, Vec::len),
        }
    }

    /// Build a validated [`System`] for `dag`.
    ///
    /// # Errors
    /// [`SpecError`] on invalid values or shape mismatches.
    pub fn build(&self, dag: &Dag) -> Result<System, SpecError> {
        let n_procs = self.num_procs();
        if n_procs == 0 {
            return Err(SpecError::Invalid("need at least one processor".into()));
        }
        let etc = match &self.processors {
            ProcessorsSpec::Homogeneous { .. } => EtcMatrix::homogeneous(dag, n_procs),
            ProcessorsSpec::Speeds { speeds } => {
                if speeds.iter().any(|&s| !s.is_finite() || s <= 0.0) {
                    return Err(SpecError::Invalid("speeds must be positive".into()));
                }
                EtcMatrix::from_speeds(dag, speeds)
            }
            ProcessorsSpec::Etc { etc } => {
                if etc.len() != dag.num_tasks() {
                    return Err(SpecError::Shape(format!(
                        "ETC has {} rows but the DAG has {} tasks",
                        etc.len(),
                        dag.num_tasks()
                    )));
                }
                if etc.iter().any(|row| row.len() != n_procs) {
                    return Err(SpecError::Shape("ragged ETC rows".into()));
                }
                if etc.iter().flatten().any(|&v| !v.is_finite() || v < 0.0) {
                    return Err(SpecError::Invalid(
                        "ETC entries must be finite and >= 0".into(),
                    ));
                }
                EtcMatrix::from_fn(dag.num_tasks(), n_procs, |t: TaskId, p: ProcId| {
                    etc[t.index()][p.index()]
                })
            }
        };
        if !self.network.bandwidth.is_finite() || self.network.bandwidth <= 0.0 {
            return Err(SpecError::Invalid("bandwidth must be positive".into()));
        }
        if !self.network.startup.is_finite() || self.network.startup < 0.0 {
            return Err(SpecError::Invalid("startup must be >= 0".into()));
        }
        let topology = match self.network.topology.as_str() {
            "fully_connected" => Topology::FullyConnected,
            "bus" => Topology::Bus,
            "ring" => Topology::Ring,
            "star" => Topology::Star,
            "mesh" => {
                let rows = self
                    .network
                    .rows
                    .ok_or_else(|| SpecError::Invalid("mesh needs rows".into()))?;
                let cols = self
                    .network
                    .cols
                    .ok_or_else(|| SpecError::Invalid("mesh needs cols".into()))?;
                if rows * cols != n_procs {
                    return Err(SpecError::Shape(format!(
                        "mesh {rows}x{cols} does not cover {n_procs} processors"
                    )));
                }
                Topology::Mesh2D { rows, cols }
            }
            other => {
                return Err(SpecError::Invalid(format!("unknown topology `{other}`")));
            }
        };
        let net = Network::with_topology(
            n_procs,
            topology,
            self.network.startup,
            self.network.bandwidth,
        );
        Ok(System::new(etc, net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;

    fn dag() -> Dag {
        dag_from_edges(&[2.0, 4.0], &[(0, 1, 3.0)]).unwrap()
    }

    fn net(topology: &str) -> NetworkSpec {
        NetworkSpec {
            topology: topology.into(),
            startup: 0.1,
            bandwidth: 2.0,
            rows: None,
            cols: None,
        }
    }

    #[test]
    fn homogeneous_spec_builds() {
        let spec = SystemSpec {
            processors: ProcessorsSpec::Homogeneous { count: 3 },
            network: net("fully_connected"),
        };
        let sys = spec.build(&dag()).unwrap();
        assert_eq!(sys.num_procs(), 3);
        assert!(sys.is_homogeneous());
        assert_eq!(sys.exec_time(TaskId(1), ProcId(2)), 4.0);
    }

    #[test]
    fn speeds_spec_builds() {
        let spec = SystemSpec {
            processors: ProcessorsSpec::Speeds {
                speeds: vec![1.0, 2.0],
            },
            network: net("ring"),
        };
        let sys = spec.build(&dag()).unwrap();
        assert_eq!(sys.exec_time(TaskId(1), ProcId(1)), 2.0);
    }

    #[test]
    fn explicit_etc_spec_builds_and_checks_shape() {
        let good = SystemSpec {
            processors: ProcessorsSpec::Etc {
                etc: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            },
            network: net("bus"),
        };
        let sys = good.build(&dag()).unwrap();
        assert_eq!(sys.exec_time(TaskId(1), ProcId(0)), 3.0);

        let bad = SystemSpec {
            processors: ProcessorsSpec::Etc {
                etc: vec![vec![1.0, 2.0]],
            },
            network: net("bus"),
        };
        assert!(matches!(bad.build(&dag()), Err(SpecError::Shape(_))));
    }

    #[test]
    fn mesh_requires_matching_dimensions() {
        let mut spec = SystemSpec {
            processors: ProcessorsSpec::Homogeneous { count: 6 },
            network: net("mesh"),
        };
        assert!(spec.build(&dag()).is_err(), "missing rows/cols");
        spec.network.rows = Some(2);
        spec.network.cols = Some(3);
        assert!(spec.build(&dag()).is_ok());
        spec.network.cols = Some(4);
        assert!(matches!(spec.build(&dag()), Err(SpecError::Shape(_))));
    }

    #[test]
    fn bad_values_rejected() {
        let spec = SystemSpec {
            processors: ProcessorsSpec::Speeds { speeds: vec![0.0] },
            network: net("bus"),
        };
        assert!(matches!(spec.build(&dag()), Err(SpecError::Invalid(_))));
        let spec = SystemSpec {
            processors: ProcessorsSpec::Homogeneous { count: 2 },
            network: NetworkSpec {
                bandwidth: 0.0,
                ..net("bus")
            },
        };
        assert!(matches!(spec.build(&dag()), Err(SpecError::Invalid(_))));
        let spec = SystemSpec {
            processors: ProcessorsSpec::Homogeneous { count: 2 },
            network: net("hypercube"),
        };
        assert!(matches!(spec.build(&dag()), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn spec_serde_round_trip_shape() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<SystemSpec>();
        assert_serde::<ProcessorsSpec>();
    }
}
