//! Expected-time-to-compute (ETC) matrices and their generation.
//!
//! `etc[t][p]` is the execution time of task `t` on processor `p`. The two
//! generation methods of the heterogeneous-computing literature are
//! provided:
//!
//! * [`EtcMethod::RangeBased`] (Topcuoglu et al.): each entry is uniform in
//!   `[w̄ₜ · (1 − β/2), w̄ₜ · (1 + β/2)]` where `w̄ₜ` is the task's nominal
//!   weight and `β ∈ [0, 2)` the heterogeneity factor. `β = 0` reproduces a
//!   homogeneous system exactly.
//! * [`EtcMethod::Cvb`] (Ali et al.): gamma-distributed entries with the
//!   task's nominal weight as mean and a machine coefficient of variation.
//!
//! Orthogonally, [`Consistency`] post-processes rows: a *consistent* matrix
//! sorts every row in the same processor order (fast machines are fast for
//! everything); *partially consistent* sorts each row with probability `f`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hetsched_dag::{Dag, TaskId};

use crate::dist::gamma_mean_cv;
use crate::ProcId;

/// Row-consistency structure of a generated ETC matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Consistency {
    /// Every row sorted in the same processor order.
    Consistent,
    /// Each row independently sorted with the given probability `f ∈ [0,1]`.
    PartiallyConsistent(f64),
    /// Rows left as drawn (no structure).
    Inconsistent,
}

/// Entry-generation method for ETC matrices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EtcMethod {
    /// Uniform around the nominal weight with heterogeneity factor `beta`.
    RangeBased {
        /// Heterogeneity factor `β ∈ [0, 2)`; spread of execution times.
        beta: f64,
    },
    /// Gamma-distributed with the nominal weight as mean.
    Cvb {
        /// Machine coefficient of variation (stddev/mean across processors).
        machine_cv: f64,
    },
}

/// Full parameter set for ETC generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtcParams {
    /// Entry-generation method.
    pub method: EtcMethod,
    /// Row-consistency post-processing.
    pub consistency: Consistency,
}

impl EtcParams {
    /// Range-based generation with heterogeneity `beta`, inconsistent rows
    /// (the most common configuration in the literature).
    pub fn range_based(beta: f64) -> Self {
        EtcParams {
            method: EtcMethod::RangeBased { beta },
            consistency: Consistency::Inconsistent,
        }
    }

    /// CVB generation with the given machine coefficient of variation,
    /// inconsistent rows.
    pub fn cvb(machine_cv: f64) -> Self {
        EtcParams {
            method: EtcMethod::Cvb { machine_cv },
            consistency: Consistency::Inconsistent,
        }
    }

    /// Same parameters with a different consistency mode.
    pub fn with_consistency(mut self, c: Consistency) -> Self {
        self.consistency = c;
        self
    }
}

/// A dense task-major ETC matrix.
///
/// Invariants (enforced by every constructor): at least one task and one
/// processor, every entry finite and strictly positive unless the task's
/// nominal weight was zero (virtual entry/exit tasks keep zero rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EtcMatrix {
    n_tasks: usize,
    n_procs: usize,
    data: Vec<f64>,
    /// Cached per-task mean over processors (the `w̄ₜ` of mean-based ranks).
    means: Vec<f64>,
}

impl EtcMatrix {
    fn from_data(n_tasks: usize, n_procs: usize, data: Vec<f64>) -> Self {
        assert!(n_tasks > 0, "ETC needs at least one task");
        assert!(n_procs > 0, "ETC needs at least one processor");
        assert_eq!(data.len(), n_tasks * n_procs);
        for &v in &data {
            assert!(
                v.is_finite() && v >= 0.0,
                "ETC entry must be finite and >= 0, got {v}"
            );
        }
        let means = (0..n_tasks)
            .map(|t| data[t * n_procs..(t + 1) * n_procs].iter().sum::<f64>() / n_procs as f64)
            .collect();
        EtcMatrix {
            n_tasks,
            n_procs,
            data,
            means,
        }
    }

    /// Build from an explicit closure `f(task, proc) -> time`.
    pub fn from_fn(
        n_tasks: usize,
        n_procs: usize,
        mut f: impl FnMut(TaskId, ProcId) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(n_tasks * n_procs);
        for t in 0..n_tasks {
            for p in 0..n_procs {
                data.push(f(TaskId::from_index(t), ProcId::from_index(p)));
            }
        }
        Self::from_data(n_tasks, n_procs, data)
    }

    /// Homogeneous matrix: every processor executes task `t` in exactly the
    /// task's nominal weight.
    pub fn homogeneous(dag: &Dag, n_procs: usize) -> Self {
        Self::from_fn(dag.num_tasks(), n_procs, |t, _| dag.task_weight(t))
    }

    /// Related-machines matrix: processor `p` has a speed factor and
    /// executes `t` in `weight(t) / speed(p)`. This is *consistent*
    /// heterogeneity by construction.
    ///
    /// # Panics
    /// Panics if any speed is not strictly positive.
    pub fn from_speeds(dag: &Dag, speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "need at least one speed");
        for &s in speeds {
            assert!(s.is_finite() && s > 0.0, "speed must be positive, got {s}");
        }
        Self::from_fn(dag.num_tasks(), speeds.len(), |t, p| {
            dag.task_weight(t) / speeds[p.index()]
        })
    }

    /// Generate an ETC matrix for `dag` on `n_procs` processors per
    /// `params`, using the DAG's task weights as nominal means.
    ///
    /// # Panics
    /// Panics on invalid parameters (`beta ∉ [0, 2)`, `machine_cv <= 0`,
    /// partial-consistency fraction outside `[0, 1]`).
    pub fn generate<R: Rng + ?Sized>(
        dag: &Dag,
        n_procs: usize,
        params: &EtcParams,
        rng: &mut R,
    ) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        let n = dag.num_tasks();
        let mut data = Vec::with_capacity(n * n_procs);
        match params.method {
            EtcMethod::RangeBased { beta } => {
                assert!(
                    (0.0..2.0).contains(&beta),
                    "heterogeneity beta must be in [0, 2), got {beta}"
                );
                for t in dag.task_ids() {
                    let w = dag.task_weight(t);
                    let lo = w * (1.0 - beta / 2.0);
                    let hi = w * (1.0 + beta / 2.0);
                    for _ in 0..n_procs {
                        data.push(if beta == 0.0 || w == 0.0 {
                            w
                        } else {
                            rng.gen_range(lo..hi)
                        });
                    }
                }
            }
            EtcMethod::Cvb { machine_cv } => {
                assert!(
                    machine_cv > 0.0,
                    "machine_cv must be positive, got {machine_cv}"
                );
                for t in dag.task_ids() {
                    let w = dag.task_weight(t);
                    for _ in 0..n_procs {
                        data.push(if w == 0.0 {
                            0.0
                        } else {
                            gamma_mean_cv(rng, w, machine_cv)
                        });
                    }
                }
            }
        }
        // Consistency post-processing: sorting a row ascending means lower
        // processor ids are uniformly faster.
        match params.consistency {
            Consistency::Inconsistent => {}
            Consistency::Consistent => {
                for t in 0..n {
                    data[t * n_procs..(t + 1) * n_procs].sort_by(f64::total_cmp);
                }
            }
            Consistency::PartiallyConsistent(f) => {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "partial-consistency fraction must be in [0, 1], got {f}"
                );
                for t in 0..n {
                    if rng.gen::<f64>() < f {
                        data[t * n_procs..(t + 1) * n_procs].sort_by(f64::total_cmp);
                    }
                }
            }
        }
        Self::from_data(n, n_procs, data)
    }

    /// Number of tasks (rows).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of processors (columns).
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.n_procs
    }

    /// Execution time of task `t` on processor `p`.
    #[inline]
    pub fn exec(&self, t: TaskId, p: ProcId) -> f64 {
        self.data[t.index() * self.n_procs + p.index()]
    }

    /// The full row of task `t` (execution time per processor).
    #[inline]
    pub fn row(&self, t: TaskId) -> &[f64] {
        &self.data[t.index() * self.n_procs..(t.index() + 1) * self.n_procs]
    }

    /// Mean execution time of `t` over all processors (cached).
    #[inline]
    pub fn mean_exec(&self, t: TaskId) -> f64 {
        self.means[t.index()]
    }

    /// Median execution time of `t` over all processors.
    pub fn median_exec(&self, t: TaskId) -> f64 {
        let mut row = self.row(t).to_vec();
        row.sort_by(f64::total_cmp);
        let m = row.len();
        if m % 2 == 1 {
            row[m / 2]
        } else {
            0.5 * (row[m / 2 - 1] + row[m / 2])
        }
    }

    /// Population standard deviation of `t`'s row.
    pub fn std_exec(&self, t: TaskId) -> f64 {
        let mu = self.mean_exec(t);
        let var = self
            .row(t)
            .iter()
            .map(|&x| (x - mu) * (x - mu))
            .sum::<f64>()
            / self.n_procs as f64;
        var.sqrt()
    }

    /// Fastest processor for `t` and its execution time.
    pub fn min_exec(&self, t: TaskId) -> (f64, ProcId) {
        let row = self.row(t);
        let (mut best, mut bp) = (row[0], 0usize);
        for (p, &v) in row.iter().enumerate().skip(1) {
            if v < best {
                best = v;
                bp = p;
            }
        }
        (best, ProcId::from_index(bp))
    }

    /// Slowest execution time of `t` over all processors.
    pub fn max_exec(&self, t: TaskId) -> f64 {
        self.row(t)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether every row is identical across processors (a homogeneous
    /// system).
    pub fn is_homogeneous(&self) -> bool {
        (0..self.n_tasks).all(|t| {
            let row = &self.data[t * self.n_procs..(t + 1) * self.n_procs];
            row.windows(2).all(|w| w[0] == w[1])
        })
    }

    /// Whether the matrix is consistent: there exists a total processor
    /// order that every row respects. Checked via the order induced by the
    /// first non-constant row.
    pub fn is_consistent(&self) -> bool {
        // order processors by their time on each row; consistent iff all
        // rows induce compatible (non-contradicting) orders. We check
        // pairwise: for every pair (p, q), the sign of etc(t,p) - etc(t,q)
        // never flips across tasks.
        for p in 0..self.n_procs {
            for q in (p + 1)..self.n_procs {
                let mut sign = 0i8;
                for t in 0..self.n_tasks {
                    let a = self.data[t * self.n_procs + p];
                    let b = self.data[t * self.n_procs + q];
                    let s = if a < b {
                        -1
                    } else if a > b {
                        1
                    } else {
                        0
                    };
                    if s != 0 {
                        if sign == 0 {
                            sign = s;
                        } else if sign != s {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Mean coefficient of variation across rows — an empirical measure of
    /// how heterogeneous the matrix is (0 for homogeneous).
    pub fn mean_row_cv(&self) -> f64 {
        let mut acc = 0.0;
        let mut counted = 0usize;
        for t in 0..self.n_tasks {
            let tid = TaskId::from_index(t);
            let mu = self.mean_exec(tid);
            if mu > 0.0 {
                acc += self.std_exec(tid) / mu;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            acc / counted as f64
        }
    }

    /// Stable 64-bit fingerprint of the matrix content (dimensions and
    /// every entry; the cached means are derived and not hashed). See
    /// [`hetsched_dag::fingerprint`].
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = hetsched_dag::Fingerprint::new();
        self.fold_fingerprint(&mut fp);
        fp.finish()
    }

    /// Fold the matrix content into an existing fingerprint stream.
    pub fn fold_fingerprint(&self, fp: &mut hetsched_dag::Fingerprint) {
        fp.tag("etc");
        fp.push_usize(self.n_tasks);
        fp.push_usize(self.n_procs);
        fp.push_f64_slice(&self.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(weights: &[f64]) -> Dag {
        let edges: Vec<(u32, u32, f64)> =
            (1..weights.len() as u32).map(|i| (i - 1, i, 1.0)).collect();
        dag_from_edges(weights, &edges).unwrap()
    }

    #[test]
    fn homogeneous_matrix() {
        let dag = chain(&[2.0, 3.0, 4.0]);
        let etc = EtcMatrix::homogeneous(&dag, 3);
        assert!(etc.is_homogeneous());
        assert!(etc.is_consistent());
        assert_eq!(etc.exec(TaskId(1), ProcId(2)), 3.0);
        assert_eq!(etc.mean_exec(TaskId(2)), 4.0);
        assert_eq!(etc.std_exec(TaskId(0)), 0.0);
        assert_eq!(etc.mean_row_cv(), 0.0);
    }

    #[test]
    fn from_speeds_is_consistent() {
        let dag = chain(&[6.0, 12.0]);
        let etc = EtcMatrix::from_speeds(&dag, &[1.0, 2.0, 3.0]);
        assert_eq!(etc.exec(TaskId(0), ProcId(0)), 6.0);
        assert_eq!(etc.exec(TaskId(0), ProcId(1)), 3.0);
        assert_eq!(etc.exec(TaskId(1), ProcId(2)), 4.0);
        assert!(etc.is_consistent());
        assert!(!etc.is_homogeneous());
        let (best, bp) = etc.min_exec(TaskId(0));
        assert_eq!((best, bp), (2.0, ProcId(2)));
        assert_eq!(etc.max_exec(TaskId(0)), 6.0);
    }

    #[test]
    fn range_based_respects_bounds_and_mean() {
        let dag = chain(&[10.0; 50]);
        let mut rng = StdRng::seed_from_u64(11);
        let etc = EtcMatrix::generate(&dag, 16, &EtcParams::range_based(1.0), &mut rng);
        for t in dag.task_ids() {
            for &v in etc.row(t) {
                assert!((5.0..15.0).contains(&v), "entry {v} out of range");
            }
        }
        // grand mean close to 10
        let grand: f64 = dag.task_ids().map(|t| etc.mean_exec(t)).sum::<f64>() / 50.0;
        assert!((grand - 10.0).abs() < 0.5, "grand mean {grand}");
    }

    #[test]
    fn beta_zero_is_exactly_homogeneous() {
        let dag = chain(&[3.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(12);
        let etc = EtcMatrix::generate(&dag, 8, &EtcParams::range_based(0.0), &mut rng);
        assert!(etc.is_homogeneous());
        assert_eq!(etc.exec(TaskId(1), ProcId(7)), 5.0);
    }

    #[test]
    fn zero_weight_tasks_stay_zero() {
        let dag = chain(&[0.0, 5.0]);
        let mut rng = StdRng::seed_from_u64(13);
        for params in [EtcParams::range_based(1.0), EtcParams::cvb(0.5)] {
            let etc = EtcMatrix::generate(&dag, 4, &params, &mut rng);
            assert!(etc.row(TaskId(0)).iter().all(|&v| v == 0.0));
            assert!(etc.row(TaskId(1)).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn cvb_has_requested_spread() {
        let dag = chain(&[10.0; 200]);
        let mut rng = StdRng::seed_from_u64(14);
        let etc = EtcMatrix::generate(&dag, 32, &EtcParams::cvb(0.5), &mut rng);
        let cv = etc.mean_row_cv();
        assert!((cv - 0.5).abs() < 0.1, "mean row cv {cv}");
    }

    #[test]
    fn consistent_mode_sorts_rows() {
        let dag = chain(&[10.0; 30]);
        let mut rng = StdRng::seed_from_u64(15);
        let etc = EtcMatrix::generate(
            &dag,
            8,
            &EtcParams::range_based(1.0).with_consistency(Consistency::Consistent),
            &mut rng,
        );
        assert!(etc.is_consistent());
        for t in dag.task_ids() {
            let row = etc.row(t);
            assert!(row.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn partially_consistent_between_extremes() {
        let dag = chain(&[10.0; 100]);
        let mut rng = StdRng::seed_from_u64(16);
        let etc = EtcMatrix::generate(
            &dag,
            8,
            &EtcParams::range_based(1.0).with_consistency(Consistency::PartiallyConsistent(0.5)),
            &mut rng,
        );
        let sorted_rows = dag
            .task_ids()
            .filter(|&t| etc.row(t).windows(2).all(|w| w[0] <= w[1]))
            .count();
        assert!(
            (20..=80).contains(&sorted_rows),
            "roughly half the rows should be sorted, got {sorted_rows}"
        );
    }

    #[test]
    fn inconsistent_random_matrix_usually_is() {
        let dag = chain(&[10.0; 30]);
        let mut rng = StdRng::seed_from_u64(17);
        let etc = EtcMatrix::generate(&dag, 8, &EtcParams::range_based(1.0), &mut rng);
        assert!(!etc.is_consistent());
    }

    #[test]
    fn median_even_and_odd() {
        let dag = chain(&[1.0]);
        let etc = EtcMatrix::from_fn(1, 4, |_, p| (p.index() + 1) as f64); // 1,2,3,4
        assert_eq!(etc.median_exec(TaskId(0)), 2.5);
        let etc3 = EtcMatrix::from_fn(1, 3, |_, p| (p.index() + 1) as f64); // 1,2,3
        assert_eq!(etc3.median_exec(TaskId(0)), 2.0);
        let _ = dag;
    }

    #[test]
    #[should_panic(expected = "heterogeneity beta")]
    fn bad_beta_panics() {
        let dag = chain(&[1.0]);
        let mut rng = StdRng::seed_from_u64(18);
        EtcMatrix::generate(&dag, 2, &EtcParams::range_based(2.5), &mut rng);
    }
}
