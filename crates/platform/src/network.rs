//! Interconnect model: per-processor-pair startup latency and bandwidth.
//!
//! The communication time of `data` units from processor `p` to `q` is
//!
//! ```text
//! comm(data, p, q) = 0                                    if p == q
//!                  = startup(p, q) + data / bandwidth(p, q)  otherwise
//! ```
//!
//! which is the standard linear (latency + inverse-bandwidth) model of the
//! HEFT-era literature. Topology constructors scale the base link cost by
//! hop count, so a ring or mesh penalizes distant pairs without a separate
//! routing simulation (static schedulers only ever consume pairwise costs).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ProcId;

/// Interconnect topologies with closed-form hop counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair one hop apart (the default of the literature).
    FullyConnected,
    /// Shared bus: one hop, but see [`Network::bus`] for the contention
    /// caveat; statically we model it as uniform one-hop.
    Bus,
    /// Bidirectional ring: hop count is the shorter way around.
    Ring,
    /// 2-D mesh with the given dimensions (`rows * cols` must equal the
    /// processor count); hop count is the Manhattan distance.
    Mesh2D {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Star: all traffic relays through hub processor 0; hop count is 1 for
    /// pairs containing the hub, 2 otherwise.
    Star,
}

impl Topology {
    /// Hop distance between processors `a` and `b` (0 when equal).
    ///
    /// # Panics
    /// Panics for [`Topology::Mesh2D`] if `rows * cols != n`.
    pub fn hops(&self, n: usize, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        match *self {
            Topology::FullyConnected | Topology::Bus => 1,
            Topology::Ring => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            Topology::Mesh2D { rows, cols } => {
                assert_eq!(rows * cols, n, "mesh dimensions must cover all processors");
                let (ra, ca) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                ra.abs_diff(rb) + ca.abs_diff(cb)
            }
            Topology::Star => {
                if a == 0 || b == 0 {
                    1
                } else {
                    2
                }
            }
        }
    }
}

/// Pairwise communication-cost model over `n` processors.
///
/// Stored as two dense `n × n` matrices (startup seconds and inverse
/// bandwidth seconds-per-unit); diagonals are zero. Matrices are not
/// required to be symmetric, though every constructor here produces
/// symmetric networks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    n: usize,
    startup: Vec<f64>,
    inv_bw: Vec<f64>,
}

impl Network {
    /// Uniform network: every distinct pair has the same `startup` and
    /// `bandwidth`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `startup < 0`, or `bandwidth <= 0`.
    pub fn uniform(n: usize, startup: f64, bandwidth: f64) -> Self {
        Self::with_topology(n, Topology::FullyConnected, startup, bandwidth)
    }

    /// Zero-latency, unit-bandwidth network — communication time equals the
    /// edge data volume. The default of abstract scheduling experiments.
    pub fn unit(n: usize) -> Self {
        Self::uniform(n, 0.0, 1.0)
    }

    /// Network derived from a `topology`: per-hop cost is
    /// `startup + data/bandwidth`, and a `k`-hop pair costs `k` times the
    /// one-hop cost (store-and-forward routing).
    ///
    /// # Panics
    /// Panics if `n == 0`, `startup < 0`, `bandwidth <= 0`, or mesh
    /// dimensions do not match `n`.
    pub fn with_topology(n: usize, topology: Topology, startup: f64, bandwidth: f64) -> Self {
        assert!(n > 0, "network needs at least one processor");
        assert!(
            startup.is_finite() && startup >= 0.0,
            "startup must be finite and >= 0"
        );
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be finite and > 0"
        );
        let mut startup_m = vec![0.0; n * n];
        let mut inv_bw_m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                let h = topology.hops(n, a, b) as f64;
                startup_m[a * n + b] = h * startup;
                inv_bw_m[a * n + b] = h / bandwidth;
            }
        }
        Network {
            n,
            startup: startup_m,
            inv_bw: inv_bw_m,
        }
    }

    /// Heterogeneous network: per-pair startup and bandwidth drawn uniformly
    /// from the given inclusive ranges; symmetric (`cost(p,q) == cost(q,p)`).
    ///
    /// # Panics
    /// Panics if `n == 0` or a range is invalid (empty, negative startup,
    /// non-positive bandwidth).
    pub fn heterogeneous_random<R: Rng + ?Sized>(
        n: usize,
        startup_range: (f64, f64),
        bandwidth_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "network needs at least one processor");
        assert!(
            startup_range.0 >= 0.0 && startup_range.0 <= startup_range.1,
            "invalid startup range"
        );
        assert!(
            bandwidth_range.0 > 0.0 && bandwidth_range.0 <= bandwidth_range.1,
            "invalid bandwidth range"
        );
        let mut startup = vec![0.0; n * n];
        let mut inv_bw = vec![0.0; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let s = rng.gen_range(startup_range.0..=startup_range.1);
                let bw = rng.gen_range(bandwidth_range.0..=bandwidth_range.1);
                startup[a * n + b] = s;
                startup[b * n + a] = s;
                inv_bw[a * n + b] = 1.0 / bw;
                inv_bw[b * n + a] = 1.0 / bw;
            }
        }
        Network { n, startup, inv_bw }
    }

    /// The network restricted to every processor except `removed`: the
    /// surviving rows and columns are copied verbatim, so any pair of
    /// surviving processors keeps exactly its old link costs (what the
    /// processor-removal delta needs for bit-identical rescheduling).
    ///
    /// # Panics
    /// Panics if `removed` is out of range or this is the last processor.
    pub fn without_proc(&self, removed: ProcId) -> Self {
        let r = removed.index();
        assert!(r < self.n, "processor {r} out of range (n = {})", self.n);
        assert!(self.n > 1, "cannot remove the last processor");
        let m = self.n - 1;
        let mut startup = Vec::with_capacity(m * m);
        let mut inv_bw = Vec::with_capacity(m * m);
        for a in (0..self.n).filter(|&a| a != r) {
            for b in (0..self.n).filter(|&b| b != r) {
                startup.push(self.startup[a * self.n + b]);
                inv_bw.push(self.inv_bw[a * self.n + b]);
            }
        }
        Network {
            n: m,
            startup,
            inv_bw,
        }
    }

    /// Number of processors this network connects.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.n
    }

    /// Communication time for `data` units from `p` to `q` (0 if `p == q`).
    #[inline]
    pub fn comm_time(&self, data: f64, p: ProcId, q: ProcId) -> f64 {
        let i = p.index() * self.n + q.index();
        // diagonal entries are zero, so co-located communication is free
        self.startup[i] + data * self.inv_bw[i]
    }

    /// Startup latency of the `p -> q` link.
    #[inline]
    pub fn startup(&self, p: ProcId, q: ProcId) -> f64 {
        self.startup[p.index() * self.n + q.index()]
    }

    /// Contiguous outgoing link-cost rows for source processor `src`:
    /// `(startup_row, inv_bw_row)`, each of length `num_procs()`, indexed by
    /// destination. `comm_time(data, src, q)` equals
    /// `startup_row[q] + data * inv_bw_row[q]` term for term, so hot loops
    /// that fan a single transfer out to every destination can run on flat
    /// slices instead of recomputing the matrix index per pair.
    #[inline]
    pub fn link_rows(&self, src: ProcId) -> (&[f64], &[f64]) {
        let base = src.index() * self.n;
        (
            &self.startup[base..base + self.n],
            &self.inv_bw[base..base + self.n],
        )
    }

    /// Mean communication time of `data` units over all ordered pairs of
    /// *distinct* processors. This is the `c̄` used by mean-based ranks
    /// (HEFT). Returns 0 for a single-processor network.
    pub fn mean_comm_time(&self, data: f64) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    acc += self.startup[a * self.n + b] + data * self.inv_bw[a * self.n + b];
                }
            }
        }
        acc / (self.n * (self.n - 1)) as f64
    }

    /// Mean startup latency over distinct ordered pairs.
    pub fn mean_startup(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    acc += self.startup[a * self.n + b];
                }
            }
        }
        acc / (self.n * (self.n - 1)) as f64
    }

    /// Mean of `1/bandwidth` over distinct ordered pairs (seconds per data
    /// unit, excluding startup).
    pub fn mean_inv_bandwidth(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let mut acc = 0.0;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    acc += self.inv_bw[a * self.n + b];
                }
            }
        }
        acc / (self.n * (self.n - 1)) as f64
    }

    /// Stable 64-bit fingerprint of the network content (processor count
    /// plus both cost matrices). See [`hetsched_dag::fingerprint`].
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = hetsched_dag::Fingerprint::new();
        self.fold_fingerprint(&mut fp);
        fp.finish()
    }

    /// Fold the network content into an existing fingerprint stream.
    pub fn fold_fingerprint(&self, fp: &mut hetsched_dag::Fingerprint) {
        fp.tag("network");
        fp.push_usize(self.n);
        fp.push_f64_slice(&self.startup);
        fp.push_f64_slice(&self.inv_bw);
    }

    /// A shared-bus network of `n` processors (alias for the `Bus`
    /// topology; statically identical to uniform one-hop).
    pub fn bus(n: usize, startup: f64, bandwidth: f64) -> Self {
        Self::with_topology(n, Topology::Bus, startup, bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn without_proc_keeps_surviving_links_bit_identical() {
        let mut rng = StdRng::seed_from_u64(23);
        let net = Network::heterogeneous_random(5, (0.1, 0.9), (1.0, 4.0), &mut rng);
        let sub = net.without_proc(ProcId(2));
        assert_eq!(sub.num_procs(), 4);
        // Surviving processors, in order, map old ids {0, 1, 3, 4} onto
        // new ids {0, 1, 2, 3}.
        let old = [0u32, 1, 3, 4];
        for (np, &op) in old.iter().enumerate() {
            for (nq, &oq) in old.iter().enumerate() {
                let a = sub.comm_time(3.5, ProcId(np as u32), ProcId(nq as u32));
                let b = net.comm_time(3.5, ProcId(op), ProcId(oq));
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn link_rows_match_comm_time() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = Network::heterogeneous_random(5, (0.1, 0.9), (1.0, 4.0), &mut rng);
        for p in 0..5u32 {
            let (su, ib) = net.link_rows(ProcId(p));
            assert_eq!(su.len(), 5);
            assert_eq!(ib.len(), 5);
            for q in 0..5u32 {
                let via_rows = su[q as usize] + 8.0 * ib[q as usize];
                assert_eq!(via_rows, net.comm_time(8.0, ProcId(p), ProcId(q)));
            }
        }
    }

    #[test]
    fn uniform_costs() {
        let net = Network::uniform(3, 2.0, 4.0);
        let (p0, p1) = (ProcId(0), ProcId(1));
        assert_eq!(net.comm_time(8.0, p0, p1), 2.0 + 8.0 / 4.0);
        assert_eq!(net.comm_time(8.0, p0, p0), 0.0);
        assert_eq!(net.mean_comm_time(8.0), 4.0);
        assert_eq!(net.mean_startup(), 2.0);
        assert!((net.mean_inv_bandwidth() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unit_network_is_data_volume() {
        let net = Network::unit(4);
        assert_eq!(net.comm_time(7.5, ProcId(0), ProcId(3)), 7.5);
        assert_eq!(net.mean_comm_time(7.5), 7.5);
    }

    #[test]
    fn single_proc_network_all_zero() {
        let net = Network::unit(1);
        assert_eq!(net.comm_time(100.0, ProcId(0), ProcId(0)), 0.0);
        assert_eq!(net.mean_comm_time(100.0), 0.0);
    }

    #[test]
    fn ring_hops() {
        let t = Topology::Ring;
        assert_eq!(t.hops(6, 0, 1), 1);
        assert_eq!(t.hops(6, 0, 3), 3);
        assert_eq!(t.hops(6, 0, 5), 1, "wraps the short way");
        assert_eq!(t.hops(6, 2, 2), 0);
    }

    #[test]
    fn mesh_hops_manhattan() {
        let t = Topology::Mesh2D { rows: 2, cols: 3 };
        // layout: 0 1 2 / 3 4 5
        assert_eq!(t.hops(6, 0, 5), 3);
        assert_eq!(t.hops(6, 1, 4), 1);
        assert_eq!(t.hops(6, 0, 2), 2);
    }

    #[test]
    #[should_panic(expected = "mesh dimensions")]
    fn mesh_dimension_mismatch_panics() {
        Topology::Mesh2D { rows: 2, cols: 2 }.hops(6, 0, 1);
    }

    #[test]
    fn star_hops() {
        let t = Topology::Star;
        assert_eq!(t.hops(5, 0, 4), 1);
        assert_eq!(t.hops(5, 2, 4), 2);
    }

    #[test]
    fn topology_scales_cost_by_hops() {
        let net = Network::with_topology(6, Topology::Ring, 1.0, 2.0);
        let one_hop = net.comm_time(4.0, ProcId(0), ProcId(1));
        let three_hop = net.comm_time(4.0, ProcId(0), ProcId(3));
        assert_eq!(one_hop, 1.0 + 2.0);
        assert_eq!(three_hop, 3.0 * one_hop);
    }

    #[test]
    fn heterogeneous_is_symmetric_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = Network::heterogeneous_random(5, (0.5, 1.5), (2.0, 8.0), &mut rng);
        for a in 0..5u32 {
            for b in 0..5u32 {
                let (p, q) = (ProcId(a), ProcId(b));
                assert_eq!(net.comm_time(3.0, p, q), net.comm_time(3.0, q, p));
                if a != b {
                    let s = net.startup(p, q);
                    assert!((0.5..=1.5).contains(&s), "startup {s}");
                    let t = net.comm_time(1.0, p, q) - s; // = 1/bw
                    assert!((1.0 / 8.0..=1.0 / 2.0).contains(&t), "inv bw {t}");
                } else {
                    assert_eq!(net.comm_time(3.0, p, q), 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and > 0")]
    fn zero_bandwidth_rejected() {
        Network::uniform(2, 0.0, 0.0);
    }
}
