//! Property-based tests for the platform model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_dag::builder::dag_from_edges;
use hetsched_dag::Dag;

use crate::etc::{Consistency, EtcMatrix, EtcParams};
use crate::network::{Network, Topology};
use crate::ProcId;

fn line_dag(n: usize) -> Dag {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let edges: Vec<(u32, u32, f64)> = (1..n as u32).map(|i| (i - 1, i, 2.0)).collect();
    dag_from_edges(&weights, &edges).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn comm_time_is_nonnegative_and_zero_on_diagonal(
        n in 1usize..12,
        data in 0.0f64..1000.0,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::heterogeneous_random(n, (0.0, 5.0), (0.5, 10.0), &mut rng);
        for a in 0..n {
            for b in 0..n {
                let c = net.comm_time(data, ProcId(a as u32), ProcId(b as u32));
                prop_assert!(c >= 0.0);
                if a == b {
                    prop_assert_eq!(c, 0.0);
                }
            }
        }
    }

    #[test]
    fn ring_hops_symmetric_and_bounded(n in 2usize..20, a in 0usize..20, b in 0usize..20) {
        let (a, b) = (a % n, b % n);
        let t = Topology::Ring;
        prop_assert_eq!(t.hops(n, a, b), t.hops(n, b, a));
        prop_assert!(t.hops(n, a, b) <= n / 2);
    }

    #[test]
    fn mesh_hops_triangle_inequality(rows in 1usize..5, cols in 1usize..5,
                                     x in 0usize..25, y in 0usize..25, z in 0usize..25) {
        let n = rows * cols;
        let (x, y, z) = (x % n, y % n, z % n);
        let t = Topology::Mesh2D { rows, cols };
        prop_assert!(t.hops(n, x, z) <= t.hops(n, x, y) + t.hops(n, y, z));
    }

    #[test]
    fn range_based_rows_bounded_by_beta(
        n_tasks in 1usize..30,
        n_procs in 1usize..16,
        beta in 0.0f64..1.99,
        seed in 0u64..1000,
    ) {
        let dag = line_dag(n_tasks);
        let mut rng = StdRng::seed_from_u64(seed);
        let etc = EtcMatrix::generate(&dag, n_procs, &EtcParams::range_based(beta), &mut rng);
        for t in dag.task_ids() {
            let w = dag.task_weight(t);
            for &v in etc.row(t) {
                prop_assert!(v >= w * (1.0 - beta / 2.0) - 1e-9);
                prop_assert!(v <= w * (1.0 + beta / 2.0) + 1e-9);
            }
        }
        // min over the row never exceeds the mean
        for t in dag.task_ids() {
            prop_assert!(etc.min_exec(t).0 <= etc.mean_exec(t) + 1e-12);
            prop_assert!(etc.max_exec(t) >= etc.mean_exec(t) - 1e-12);
        }
    }

    #[test]
    fn consistent_generation_reports_consistent(
        n_tasks in 1usize..20,
        n_procs in 1usize..10,
        seed in 0u64..1000,
    ) {
        let dag = line_dag(n_tasks);
        let mut rng = StdRng::seed_from_u64(seed);
        let etc = EtcMatrix::generate(
            &dag,
            n_procs,
            &EtcParams::range_based(1.0).with_consistency(Consistency::Consistent),
            &mut rng,
        );
        prop_assert!(etc.is_consistent());
    }

    #[test]
    fn mean_comm_between_min_and_max_pairwise(
        n in 2usize..10,
        data in 0.0f64..100.0,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::heterogeneous_random(n, (0.0, 2.0), (1.0, 8.0), &mut rng);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let c = net.comm_time(data, ProcId(a as u32), ProcId(b as u32));
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
            }
        }
        let mean = net.mean_comm_time(data);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }
}
