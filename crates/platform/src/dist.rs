//! Minimal distribution samplers used by ETC generation.
//!
//! `rand_distr` is not in the approved offline dependency set, so the two
//! distributions the CVB method needs — standard normal and gamma — are
//! implemented here: Box–Muller for the normal, Marsaglia–Tsang for the
//! gamma (with the standard `alpha < 1` boost).

use rand::Rng;

/// Draw one standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw one Gamma(alpha, theta) variate (shape `alpha` > 0, scale
/// `theta` > 0) using Marsaglia & Tsang's squeeze method.
///
/// # Panics
/// Panics if `alpha` or `theta` is not strictly positive and finite.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64, theta: f64) -> f64 {
    assert!(
        alpha.is_finite() && alpha > 0.0,
        "gamma shape must be positive, got {alpha}"
    );
    assert!(
        theta.is_finite() && theta > 0.0,
        "gamma scale must be positive, got {theta}"
    );
    if alpha < 1.0 {
        // boost: Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, alpha + 1.0, theta) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        // squeeze check, then full check
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3 * theta;
        }
    }
}

/// Draw a Gamma variate parameterized by mean `mu` and coefficient of
/// variation `cv` (stddev / mean), the form the CVB ETC method uses.
///
/// # Panics
/// Panics if `mu <= 0` or `cv <= 0`.
pub fn gamma_mean_cv<R: Rng + ?Sized>(rng: &mut R, mu: f64, cv: f64) -> f64 {
    assert!(mu > 0.0, "mean must be positive, got {mu}");
    assert!(cv > 0.0, "cv must be positive, got {cv}");
    let alpha = 1.0 / (cv * cv);
    let theta = mu / alpha;
    gamma(rng, alpha, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (m, v) = moments(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.03, "var {v}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, th) = (4.0, 2.5);
        let xs: Vec<f64> = (0..200_000).map(|_| gamma(&mut rng, a, th)).collect();
        let (m, v) = moments(&xs);
        assert!((m - a * th).abs() / (a * th) < 0.02, "mean {m}");
        assert!((v - a * th * th).abs() / (a * th * th) < 0.05, "var {v}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, th) = (0.5, 3.0);
        let xs: Vec<f64> = (0..200_000).map(|_| gamma(&mut rng, a, th)).collect();
        let (m, v) = moments(&xs);
        assert!((m - a * th).abs() / (a * th) < 0.03, "mean {m}");
        assert!((v - a * th * th).abs() / (a * th * th) < 0.08, "var {v}");
    }

    #[test]
    fn gamma_mean_cv_hits_target_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let (mu, cv) = (10.0, 0.5);
        let xs: Vec<f64> = (0..200_000)
            .map(|_| gamma_mean_cv(&mut rng, mu, cv))
            .collect();
        let (m, v) = moments(&xs);
        assert!((m - mu).abs() / mu < 0.02, "mean {m}");
        let sd = v.sqrt();
        assert!((sd / m - cv).abs() < 0.03, "cv {}", sd / m);
    }

    #[test]
    fn gamma_is_always_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(gamma(&mut rng, 0.3, 1.0) > 0.0);
            assert!(gamma(&mut rng, 7.0, 0.1) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_bad_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        gamma(&mut rng, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma scale must be positive")]
    fn gamma_rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        gamma(&mut rng, 1.0, -1.0);
    }
}
