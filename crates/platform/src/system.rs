//! The complete computing system a schedule targets: an ETC matrix plus an
//! interconnect.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hetsched_dag::{Dag, TaskId};

use crate::etc::{EtcMatrix, EtcParams};
use crate::network::Network;
use crate::ProcId;

/// A target computing system: execution times (ETC matrix) and
/// communication costs (network) over the same processor set.
///
/// This is the single object every scheduler in `hetsched-core` consumes;
/// homogeneous systems are just the special case of a flat ETC matrix and a
/// uniform network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct System {
    etc: EtcMatrix,
    net: Network,
}

impl System {
    /// Combine an ETC matrix and a network.
    ///
    /// # Panics
    /// Panics if they disagree on the processor count.
    pub fn new(etc: EtcMatrix, net: Network) -> Self {
        assert_eq!(
            etc.num_procs(),
            net.num_procs(),
            "ETC matrix and network must cover the same processors"
        );
        System { etc, net }
    }

    /// Homogeneous system: `n_procs` identical processors (task times equal
    /// nominal weights) over a uniform network.
    pub fn homogeneous(dag: &Dag, n_procs: usize, startup: f64, bandwidth: f64) -> Self {
        Self::new(
            EtcMatrix::homogeneous(dag, n_procs),
            Network::uniform(n_procs, startup, bandwidth),
        )
    }

    /// Homogeneous system over a zero-latency unit-bandwidth network:
    /// communication time equals edge data volume. The abstract setting of
    /// most homogeneous scheduling papers.
    pub fn homogeneous_unit(dag: &Dag, n_procs: usize) -> Self {
        Self::new(EtcMatrix::homogeneous(dag, n_procs), Network::unit(n_procs))
    }

    /// Heterogeneous system with a generated ETC matrix (per `params`) over
    /// a unit network. The configuration of the classic random-DAG
    /// experiments, where edge data volumes already encode the intended CCR.
    pub fn heterogeneous_random<R: Rng + ?Sized>(
        dag: &Dag,
        n_procs: usize,
        params: &EtcParams,
        rng: &mut R,
    ) -> Self {
        Self::new(
            EtcMatrix::generate(dag, n_procs, params, rng),
            Network::unit(n_procs),
        )
    }

    /// Heterogeneous system with both a generated ETC matrix and a random
    /// heterogeneous network.
    pub fn fully_random<R: Rng + ?Sized>(
        dag: &Dag,
        n_procs: usize,
        params: &EtcParams,
        startup_range: (f64, f64),
        bandwidth_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        Self::new(
            EtcMatrix::generate(dag, n_procs, params, rng),
            Network::heterogeneous_random(n_procs, startup_range, bandwidth_range, rng),
        )
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.etc.num_procs()
    }

    /// Iterator over all processor ids.
    pub fn proc_ids(&self) -> impl ExactSizeIterator<Item = ProcId> + Clone {
        (0..self.num_procs() as u32).map(ProcId)
    }

    /// The ETC matrix.
    #[inline]
    pub fn etc(&self) -> &EtcMatrix {
        &self.etc
    }

    /// The network.
    #[inline]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Execution time of task `t` on processor `p`.
    #[inline]
    pub fn exec_time(&self, t: TaskId, p: ProcId) -> f64 {
        self.etc.exec(t, p)
    }

    /// Communication time of `data` units from `p` to `q` (0 when equal).
    #[inline]
    pub fn comm_time(&self, data: f64, p: ProcId, q: ProcId) -> f64 {
        self.net.comm_time(data, p, q)
    }

    /// Mean execution time of `t` over processors (the `w̄ₜ` of HEFT).
    #[inline]
    pub fn mean_exec(&self, t: TaskId) -> f64 {
        self.etc.mean_exec(t)
    }

    /// Mean communication time of `data` units over distinct processor
    /// pairs (the `c̄` of HEFT).
    #[inline]
    pub fn mean_comm(&self, data: f64) -> f64 {
        self.net.mean_comm_time(data)
    }

    /// Whether this system is homogeneous (flat ETC matrix).
    pub fn is_homogeneous(&self) -> bool {
        self.etc.is_homogeneous()
    }

    /// Stable 64-bit fingerprint of the full system content (ETC matrix
    /// plus network). Any change to one execution-time entry, one link
    /// cost, or either dimension changes the digest. See
    /// [`hetsched_dag::fingerprint`].
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = hetsched_dag::Fingerprint::new();
        self.fold_fingerprint(&mut fp);
        fp.finish()
    }

    /// Fold the system content into an existing fingerprint stream.
    pub fn fold_fingerprint(&self, fp: &mut hetsched_dag::Fingerprint) {
        self.etc.fold_fingerprint(fp);
        self.net.fold_fingerprint(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::builder::dag_from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dag() -> Dag {
        dag_from_edges(&[2.0, 3.0, 4.0], &[(0, 1, 6.0), (0, 2, 8.0)]).unwrap()
    }

    #[test]
    fn homogeneous_accessors() {
        let d = dag();
        let sys = System::homogeneous(&d, 3, 1.0, 2.0);
        assert_eq!(sys.num_procs(), 3);
        assert!(sys.is_homogeneous());
        assert_eq!(sys.exec_time(TaskId(1), ProcId(2)), 3.0);
        assert_eq!(sys.comm_time(6.0, ProcId(0), ProcId(1)), 1.0 + 3.0);
        assert_eq!(sys.comm_time(6.0, ProcId(1), ProcId(1)), 0.0);
        assert_eq!(sys.mean_exec(TaskId(2)), 4.0);
        assert_eq!(sys.mean_comm(6.0), 4.0);
    }

    #[test]
    fn unit_network_comm_is_data() {
        let d = dag();
        let sys = System::homogeneous_unit(&d, 2);
        assert_eq!(sys.comm_time(8.0, ProcId(0), ProcId(1)), 8.0);
    }

    #[test]
    fn heterogeneous_random_is_reproducible() {
        let d = dag();
        let mk = || {
            let mut rng = StdRng::seed_from_u64(7);
            System::heterogeneous_random(&d, 4, &EtcParams::range_based(1.0), &mut rng)
        };
        let (a, b) = (mk(), mk());
        for t in d.task_ids() {
            for p in a.proc_ids() {
                assert_eq!(a.exec_time(t, p), b.exec_time(t, p));
            }
        }
        assert!(!a.is_homogeneous());
    }

    #[test]
    fn fully_random_builds() {
        let d = dag();
        let mut rng = StdRng::seed_from_u64(8);
        let sys = System::fully_random(
            &d,
            4,
            &EtcParams::range_based(0.5),
            (0.1, 0.2),
            (1.0, 4.0),
            &mut rng,
        );
        assert_eq!(sys.num_procs(), 4);
        let c = sys.comm_time(4.0, ProcId(0), ProcId(1));
        assert!((0.1 + 1.0..=0.2 + 4.0).contains(&c), "comm {c}");
    }

    #[test]
    #[should_panic(expected = "same processors")]
    fn mismatched_sizes_panic() {
        let d = dag();
        System::new(EtcMatrix::homogeneous(&d, 3), Network::unit(4));
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let d = dag();
        let base = System::homogeneous(&d, 3, 1.0, 2.0);
        let same = System::homogeneous(&d, 3, 1.0, 2.0);
        assert_eq!(base.content_fingerprint(), same.content_fingerprint());

        // Perturb exactly one ETC entry.
        let bumped = EtcMatrix::from_fn(d.num_tasks(), 3, |t, p| {
            let v = base.exec_time(t, p);
            if t == TaskId(1) && p == ProcId(2) {
                v + 0.25
            } else {
                v
            }
        });
        let sys2 = System::new(bumped, Network::uniform(3, 1.0, 2.0));
        assert_ne!(base.content_fingerprint(), sys2.content_fingerprint());

        // Perturb only the network.
        let sys3 = System::new(EtcMatrix::homogeneous(&d, 3), Network::uniform(3, 1.0, 2.5));
        assert_ne!(base.content_fingerprint(), sys3.content_fingerprint());

        // ETC and network digests are domain-separated: a system fingerprint
        // never equals either component's own fingerprint.
        assert_ne!(base.content_fingerprint(), base.etc().content_fingerprint());
        assert_ne!(
            base.content_fingerprint(),
            base.network().content_fingerprint()
        );
    }
}
