//! # hetsched-platform
//!
//! The *computing system* model for the `hetsched` scheduler family: a set
//! of processors with an **expected-time-to-compute (ETC)** matrix, plus an
//! interconnect with per-link startup latency and bandwidth.
//!
//! Heterogeneity is expressed the way the static-scheduling literature does:
//!
//! * **Range-based ETC generation** — each task's execution time on each
//!   processor is drawn uniformly around the task's nominal weight, with a
//!   heterogeneity factor `β` controlling the spread (β = 0 ⇒ homogeneous).
//! * **CVB (coefficient-of-variation based) ETC generation** — gamma
//!   distributed task and machine variation, the method of Ali et al.
//! * **Consistency** — a *consistent* matrix means processor `p` faster than
//!   `q` on one task implies faster on all; *inconsistent* has no such
//!   structure; *partially consistent* sorts a fraction of columns.
//!
//! A homogeneous system is simply a flat ETC matrix plus a uniform network,
//! so every scheduler in `hetsched-core` covers both halves of the paper's
//! title with one code path.
//!
//! ```
//! use hetsched_dag::builder::dag_from_edges;
//! use hetsched_platform::{System, EtcParams};
//! use rand::SeedableRng;
//!
//! let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(0.5), &mut rng);
//! assert_eq!(sys.num_procs(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod etc;
mod id;
pub mod network;
pub mod spec;
pub mod system;

pub use etc::{Consistency, EtcMatrix, EtcMethod, EtcParams};
pub use id::ProcId;
pub use network::{Network, Topology};
pub use spec::SystemSpec;
pub use system::System;

#[cfg(test)]
mod proptests;
