use serde::{Deserialize, Serialize};

/// Identifier of a processor in a [`crate::System`].
///
/// Dense index newtype, mirroring `hetsched_dag::TaskId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The processor id as a `usize` index.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        ProcId(u32::try_from(i).expect("processor index exceeds u32::MAX"))
    }
}

impl core::fmt::Display for ProcId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl core::fmt::Debug for ProcId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ProcId({})", self.0)
    }
}

impl From<u32> for ProcId {
    fn from(v: u32) -> Self {
        ProcId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        assert_eq!(ProcId::from_index(3).index(), 3);
        assert_eq!(ProcId(3).to_string(), "p3");
        assert!(ProcId(1) < ProcId(2));
    }
}
