//! Normalized schedule-quality metrics: SLR, speedup, efficiency.

use hetsched_dag::Dag;
use hetsched_platform::System;

/// Length of the graph's critical path when every task is charged its
/// **minimum** execution cost over processors (`CP_MIN`), communication
/// excluded from the sum.
///
/// This is the denominator of the classic SLR (Topcuoglu et al.): a
/// schedule can never finish faster than running every critical-path task
/// on its fastest processor with free communication, so `SLR ≥ 1` always.
/// The path itself is selected by those same min-cost weights (with zero
/// communication), matching the common implementation of the metric.
pub fn cp_min(dag: &Dag, sys: &System) -> f64 {
    let mut bl = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        let tail = dag
            .successors(t)
            .map(|(s, _)| bl[s.index()])
            .fold(0.0f64, f64::max);
        bl[t.index()] = sys.etc().min_exec(t).0 + tail;
    }
    dag.task_ids().map(|t| bl[t.index()]).fold(0.0f64, f64::max)
}

/// Schedule length ratio: `makespan / CP_MIN`.
///
/// Returns `NaN` if the graph consists solely of zero-weight tasks
/// (`CP_MIN == 0`) — instances the experiment generators never produce.
///
/// ```
/// use hetsched_dag::builder::dag_from_edges;
/// use hetsched_metrics::slr;
/// use hetsched_platform::System;
///
/// let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 5.0)]).unwrap();
/// let sys = System::homogeneous_unit(&dag, 2);
/// // CP_MIN = 5 (both tasks at their fastest, comm free)
/// assert_eq!(slr(&dag, &sys, 10.0), 2.0);
/// ```
pub fn slr(dag: &Dag, sys: &System, makespan: f64) -> f64 {
    makespan / cp_min(dag, sys)
}

/// Sequential time: the best single processor's total execution time,
/// `min_p Σ_t w(t, p)` (communication-free, as all tasks are co-located).
pub fn sequential_time(dag: &Dag, sys: &System) -> f64 {
    sys.proc_ids()
        .map(|p| dag.task_ids().map(|t| sys.exec_time(t, p)).sum::<f64>())
        .fold(f64::INFINITY, f64::min)
}

/// Speedup: sequential time on the best single processor divided by the
/// schedule's makespan.
pub fn speedup(dag: &Dag, sys: &System, makespan: f64) -> f64 {
    sequential_time(dag, sys) / makespan
}

/// Efficiency: speedup divided by the number of processors (∈ (0, 1] for
/// any sane schedule).
pub fn efficiency(dag: &Dag, sys: &System, makespan: f64) -> f64 {
    speedup(dag, sys, makespan) / sys.num_procs() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::{algorithms::Heft, Scheduler};
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcMatrix, Network};

    fn chain() -> Dag {
        dag_from_edges(&[2.0, 3.0, 4.0], &[(0, 1, 5.0), (1, 2, 5.0)]).unwrap()
    }

    #[test]
    fn cp_min_uses_fastest_processor_per_task() {
        let dag = chain();
        // two procs: p0 = nominal, p1 = half cost
        let etc = EtcMatrix::from_fn(3, 2, |t, p| {
            let w = [2.0, 3.0, 4.0][t.index()];
            if p.index() == 1 {
                w / 2.0
            } else {
                w
            }
        });
        let sys = System::new(etc, Network::unit(2));
        assert_eq!(cp_min(&dag, &sys), 4.5);
    }

    use hetsched_dag::Dag;
    use hetsched_platform::System;

    #[test]
    fn slr_of_serial_chain_on_homogeneous_is_one() {
        let dag = chain();
        let sys = System::homogeneous_unit(&dag, 2);
        let s = Heft::new().schedule(&dag, &sys);
        // chain stays local: makespan 9 == CP_MIN 9
        assert!((slr(&dag, &sys, s.makespan()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slr_never_below_one_for_valid_schedules() {
        let dag = chain();
        let sys = System::homogeneous_unit(&dag, 3);
        let s = Heft::new().schedule(&dag, &sys);
        assert!(slr(&dag, &sys, s.makespan()) >= 1.0 - 1e-12);
    }

    #[test]
    fn speedup_and_efficiency_on_parallel_work() {
        let dag = dag_from_edges(&[4.0, 4.0, 4.0, 4.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        let s = Heft::new().schedule(&dag, &sys);
        assert_eq!(s.makespan(), 4.0);
        assert_eq!(sequential_time(&dag, &sys), 16.0);
        assert_eq!(speedup(&dag, &sys, s.makespan()), 4.0);
        assert_eq!(efficiency(&dag, &sys, s.makespan()), 1.0);
    }

    #[test]
    fn sequential_time_picks_best_processor() {
        let dag = chain();
        let etc = EtcMatrix::from_fn(3, 2, |t, p| {
            let w = [2.0, 3.0, 4.0][t.index()];
            if p.index() == 1 {
                w * 0.1
            } else {
                w
            }
        });
        let sys = System::new(etc, Network::unit(2));
        assert!((sequential_time(&dag, &sys) - 0.9).abs() < 1e-12);
    }
}
