//! # hetsched-metrics
//!
//! Evaluation metrics and statistics for scheduling experiments:
//!
//! * [`mod@slr`] — schedule length ratio, speedup, efficiency (the normalized
//!   quality metrics every figure reports);
//! * [`stats`] — summary statistics with confidence intervals;
//! * [`compare`] — pairwise win/tie/loss tables across algorithms;
//! * [`table`] — plain-text table rendering for harness output;
//! * [`occupancy`] — schedule-shape statistics (processor use, idle
//!   fraction, duplication counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod compare;
pub mod gantt;
pub mod occupancy;
pub mod plot;
pub mod slr;
pub mod stats;
pub mod table;

pub use bounds::lower_bound;
pub use compare::WtlTable;
pub use slr::{efficiency, slr, speedup};
pub use stats::Summary;
