//! Summary statistics for experiment series.

use serde::{Deserialize, Serialize};

/// Summary of a sample: count, mean, standard deviation (sample, n−1),
/// min, max, and a 95% normal-approximation confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// 95% confidence half-width (`1.96 · std / √n`; 0 for n < 2).
    pub ci95: f64,
}

impl Summary {
    /// Summarize a slice of samples.
    ///
    /// # Panics
    /// Panics if `xs` is empty or contains non-finite values.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        assert!(xs.iter().all(|x| x.is_finite()), "samples must be finite");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * std / (n as f64).sqrt()
        };
        Summary {
            n,
            mean,
            std,
            min,
            max,
            ci95,
        }
    }
}

/// Geometric mean of strictly positive samples — the right way to average
/// ratios such as SLR across heterogeneous instances.
///
/// # Panics
/// Panics if `xs` is empty or any sample is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "cannot average an empty sample");
    assert!(
        xs.iter().all(|&x| x > 0.0 && x.is_finite()),
        "geometric mean needs positive finite samples"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        // geometric mean <= arithmetic mean
        let xs = [1.0, 3.0, 9.0];
        assert!(geometric_mean(&xs) < Summary::of(&xs).mean);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
