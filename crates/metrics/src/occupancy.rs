//! Schedule-shape statistics: how a scheduler used the machine.

use serde::{Deserialize, Serialize};

use hetsched_core::Schedule;

/// Occupancy statistics of one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Processors with at least one slot.
    pub procs_used: usize,
    /// Total processors available.
    pub procs_total: usize,
    /// Fraction of `procs_total × makespan` spent idle (0 for a perfectly
    /// packed schedule; 0 for an empty schedule by convention).
    pub idle_fraction: f64,
    /// Number of duplicate task copies.
    pub duplicates: usize,
    /// Busy time spent on duplicates divided by total busy time (0 when
    /// there is no work).
    pub duplication_overhead: f64,
}

/// Compute occupancy statistics for `sched`.
pub fn occupancy(sched: &Schedule) -> Occupancy {
    let makespan = sched.makespan();
    let busy = sched.busy_time();
    let area = sched.num_procs() as f64 * makespan;
    let dup_busy: f64 = (0..sched.num_procs() as u32)
        .flat_map(|p| sched.slots(hetsched_platform::ProcId(p)).iter())
        .filter(|s| s.duplicate)
        .map(|s| s.finish - s.start)
        .sum();
    Occupancy {
        procs_used: sched.procs_used(),
        procs_total: sched.num_procs(),
        idle_fraction: if area > 0.0 { 1.0 - busy / area } else { 0.0 },
        duplicates: sched.num_duplicates(),
        duplication_overhead: if busy > 0.0 { dup_busy / busy } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::TaskId;
    use hetsched_platform::ProcId;

    #[test]
    fn packed_schedule_has_zero_idle() {
        let mut s = Schedule::new(2, 1);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(0), 2.0, 3.0).unwrap();
        let o = occupancy(&s);
        assert_eq!(o.procs_used, 1);
        assert_eq!(o.procs_total, 1);
        assert!(o.idle_fraction.abs() < 1e-12);
        assert_eq!(o.duplicates, 0);
        assert_eq!(o.duplication_overhead, 0.0);
    }

    #[test]
    fn idle_and_duplicates_are_measured() {
        let mut s = Schedule::new(2, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert_duplicate(TaskId(0), ProcId(1), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(1), 2.0, 2.0).unwrap();
        let o = occupancy(&s);
        assert_eq!(o.procs_used, 2);
        assert_eq!(o.duplicates, 1);
        // busy = 6, area = 8 -> idle 0.25; dup overhead = 2/6
        assert!((o.idle_fraction - 0.25).abs() < 1e-12);
        assert!((o.duplication_overhead - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_is_well_defined() {
        let s = Schedule::new(1, 2);
        let o = occupancy(&s);
        assert_eq!(o.procs_used, 0);
        assert_eq!(o.idle_fraction, 0.0);
    }
}
