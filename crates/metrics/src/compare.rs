//! Pairwise win/tie/loss comparison across algorithms — the classic table
//! every scheduling paper ends its evaluation with.

use serde::{Deserialize, Serialize};

/// Relative tolerance within which two makespans count as a tie (list
/// schedulers frequently produce identical schedules on easy instances).
pub const TIE_EPS: f64 = 1e-9;

/// Win/tie/loss table over a set of algorithms, accumulated one instance
/// at a time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WtlTable {
    names: Vec<String>,
    /// `wins[a][b]` = number of instances where algorithm `a` had a
    /// strictly smaller makespan than `b`.
    wins: Vec<Vec<usize>>,
    /// `ties[a][b]` = instances where they were equal within tolerance.
    ties: Vec<Vec<usize>>,
    instances: usize,
}

impl WtlTable {
    /// New table over the given algorithm names.
    ///
    /// # Panics
    /// Panics if `names` is empty.
    pub fn new(names: Vec<String>) -> Self {
        assert!(!names.is_empty(), "need at least one algorithm");
        let k = names.len();
        WtlTable {
            names,
            wins: vec![vec![0; k]; k],
            ties: vec![vec![0; k]; k],
            instances: 0,
        }
    }

    /// Record one instance's makespans (same order as the names).
    ///
    /// # Panics
    /// Panics if `makespans.len()` differs from the algorithm count or any
    /// value is non-finite.
    pub fn record(&mut self, makespans: &[f64]) {
        assert_eq!(makespans.len(), self.names.len());
        assert!(makespans.iter().all(|m| m.is_finite()));
        let k = makespans.len();
        for a in 0..k {
            for b in 0..k {
                if a == b {
                    continue;
                }
                let (ma, mb) = (makespans[a], makespans[b]);
                let tol = TIE_EPS * ma.abs().max(mb.abs()).max(1.0);
                if (ma - mb).abs() <= tol {
                    self.ties[a][b] += 1;
                } else if ma < mb {
                    self.wins[a][b] += 1;
                }
            }
        }
        self.instances += 1;
    }

    /// Number of recorded instances.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// Algorithm names in table order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// `(wins, ties, losses)` of algorithm `a` against `b`, as counts.
    pub fn counts(&self, a: usize, b: usize) -> (usize, usize, usize) {
        let w = self.wins[a][b];
        let t = self.ties[a][b];
        (w, t, self.instances - w - t)
    }

    /// `(win%, tie%, loss%)` of `a` against `b` (0..=100).
    pub fn percentages(&self, a: usize, b: usize) -> (f64, f64, f64) {
        if self.instances == 0 {
            return (0.0, 0.0, 0.0);
        }
        let (w, t, l) = self.counts(a, b);
        let n = self.instances as f64;
        (
            100.0 * w as f64 / n,
            100.0 * t as f64 / n,
            100.0 * l as f64 / n,
        )
    }

    /// Overall win rate of `a`: fraction of (instance, opponent) pairs `a`
    /// strictly won.
    pub fn overall_win_rate(&self, a: usize) -> f64 {
        let k = self.names.len();
        if self.instances == 0 || k < 2 {
            return 0.0;
        }
        let total_wins: usize = (0..k).filter(|&b| b != a).map(|b| self.wins[a][b]).sum();
        total_wins as f64 / (self.instances * (k - 1)) as f64
    }

    /// Render the full table as text: one block per row algorithm with
    /// `win/tie/loss %` against each column algorithm.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "win/tie/loss % over {} instances", self.instances);
        let width = self.names.iter().map(String::len).max().unwrap_or(4).max(6);
        let _ = write!(s, "{:width$} ", "");
        for name in &self.names {
            let _ = write!(s, "{name:>16} ");
        }
        s.push('\n');
        for (a, name) in self.names.iter().enumerate() {
            let _ = write!(s, "{name:width$} ");
            for b in 0..self.names.len() {
                if a == b {
                    let _ = write!(s, "{:>16} ", "-");
                } else {
                    let (w, t, l) = self.percentages(a, b);
                    let _ = write!(s, "{:>16} ", format!("{w:.0}/{t:.0}/{l:.0}"));
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> WtlTable {
        let mut t = WtlTable::new(vec!["A".into(), "B".into(), "C".into()]);
        t.record(&[1.0, 2.0, 2.0]); // A beats both; B ties C
        t.record(&[3.0, 2.0, 4.0]); // B beats both
        t.record(&[5.0, 5.0, 5.0]); // all tie
        t
    }

    #[test]
    fn counts_are_consistent() {
        let t = table();
        assert_eq!(t.instances(), 3);
        assert_eq!(t.counts(0, 1), (1, 1, 1)); // A vs B: win, tie, loss
        assert_eq!(t.counts(1, 0), (1, 1, 1));
        assert_eq!(t.counts(0, 2), (2, 1, 0)); // A vs C: 2 wins, 1 tie
        assert_eq!(t.counts(2, 0), (0, 1, 2));
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let t = table();
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    let (w, ti, l) = t.percentages(a, b);
                    assert!((w + ti + l - 100.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn overall_win_rate_ranks_a_first() {
        let t = table();
        assert!(t.overall_win_rate(0) > t.overall_win_rate(2));
    }

    #[test]
    fn render_contains_all_names() {
        let t = table();
        let s = t.render();
        for n in ["A", "B", "C"] {
            assert!(s.contains(n));
        }
        assert!(s.contains("3 instances"));
    }

    #[test]
    fn near_equal_makespans_tie() {
        let mut t = WtlTable::new(vec!["A".into(), "B".into()]);
        t.record(&[100.0, 100.0 + 1e-12]);
        assert_eq!(t.counts(0, 1), (0, 1, 0));
    }
}
