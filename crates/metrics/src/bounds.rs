//! Makespan lower bounds — scheduler-independent floors used to sanity-
//! check every heuristic and to bound the optimality gap in reports.

use hetsched_dag::Dag;
use hetsched_platform::System;

use crate::slr::cp_min;

/// Work bound: total fastest-processor work divided by the processor
/// count. No schedule can beat perfectly balanced, communication-free
/// execution of every task at its individual best speed.
pub fn work_bound(dag: &Dag, sys: &System) -> f64 {
    let total: f64 = dag.task_ids().map(|t| sys.etc().min_exec(t).0).sum();
    total / sys.num_procs() as f64
}

/// Critical-path bound: the `CP_MIN` of the SLR denominator — every
/// critical-path task at its fastest processor, communication free.
pub fn critical_path_bound(dag: &Dag, sys: &System) -> f64 {
    cp_min(dag, sys)
}

/// The tightest combination of the simple bounds.
pub fn lower_bound(dag: &Dag, sys: &System) -> f64 {
    work_bound(dag, sys).max(critical_path_bound(dag, sys))
}

/// Optimality-gap certificate: `makespan / lower_bound`. A value of 1.0
/// proves the schedule optimal; heuristic papers report how close their
/// schedules get.
pub fn gap(dag: &Dag, sys: &System, makespan: f64) -> f64 {
    makespan / lower_bound(dag, sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::algorithms::all_heterogeneous;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_platform::{EtcParams, System};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounds_on_independent_tasks() {
        let dag = dag_from_edges(&[4.0, 4.0, 4.0, 4.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        assert_eq!(work_bound(&dag, &sys), 4.0);
        assert_eq!(critical_path_bound(&dag, &sys), 4.0);
        assert_eq!(lower_bound(&dag, &sys), 4.0);
    }

    #[test]
    fn cp_bound_dominates_on_chains() {
        let dag = dag_from_edges(&[3.0, 3.0, 3.0], &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        assert_eq!(work_bound(&dag, &sys), 9.0 / 4.0);
        assert_eq!(critical_path_bound(&dag, &sys), 9.0);
        assert_eq!(lower_bound(&dag, &sys), 9.0);
    }

    #[test]
    fn gap_of_an_optimal_schedule_is_one() {
        let dag = dag_from_edges(&[3.0, 3.0, 3.0], &[(0, 1, 0.0), (1, 2, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        // all three serial on one processor is optimal: makespan 9
        assert!((gap(&dag, &sys, 9.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_scheduler_respects_the_lower_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights: Vec<f64> = (0..30).map(|i| 1.0 + (i % 5) as f64).collect();
        let edges: Vec<(u32, u32, f64)> = (0..29u32).map(|i| (i, i + 1, 2.0)).collect();
        let dag = dag_from_edges(&weights, &edges).unwrap();
        let sys = System::heterogeneous_random(&dag, 4, &EtcParams::range_based(1.0), &mut rng);
        let lb = lower_bound(&dag, &sys);
        for alg in all_heterogeneous() {
            use hetsched_core::Scheduler as _;
            let m = alg.schedule(&dag, &sys).makespan();
            assert!(m >= lb - 1e-9, "{}: {m} < bound {lb}", alg.name());
        }
    }
}
