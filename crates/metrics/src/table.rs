//! Minimal plain-text table rendering for harness reports.

/// A simple column-aligned text table.
///
/// ```
/// use hetsched_metrics::table::TextTable;
/// let mut t = TextTable::new(vec!["alg".into(), "SLR".into()]);
/// t.row(vec!["HEFT".into(), "1.23".into()]);
/// let s = t.render();
/// assert!(s.contains("HEFT"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given header.
    ///
    /// # Panics
    /// Panics if the header is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns (first column left-aligned, the rest
    /// right-aligned) and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut s = String::new();
        let fmt_row = |cells: &[String], s: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    s.push_str(&format!("{cell:<w$}  ", w = width[0]));
                } else {
                    s.push_str(&format!("{cell:>w$}  ", w = width[c]));
                }
            }
            while s.ends_with(' ') {
                s.pop();
            }
            s.push('\n');
        };
        fmt_row(&self.header, &mut s);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        s.push_str(&"-".repeat(total));
        s.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "123.456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // right alignment of the numeric column
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("123.456"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["x".into()]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
