//! Minimal SVG line charts — turns experiment series into paper-style
//! figures without a plotting dependency.

use std::fmt::Write as _;

/// Chart geometry options.
#[derive(Debug, Clone, Copy)]
pub struct PlotStyle {
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
    /// Margin around the plot area (axes labels live here).
    pub margin: u32,
}

impl Default for PlotStyle {
    fn default() -> Self {
        PlotStyle {
            width: 640,
            height: 400,
            margin: 60,
        }
    }
}

/// Stable distinguishable stroke per series index.
fn series_color(i: usize) -> String {
    let hue = (i as f64 * 137.508) % 360.0;
    format!("hsl({hue:.0}, 70%, 40%)")
}

/// Render a line chart: categorical x axis (`x_labels`), one polyline per
/// series. Y axis is scaled to the data range with a zero-free baseline.
///
/// # Panics
/// Panics if series lengths disagree with `x_labels`, the data is empty,
/// or contains non-finite values.
pub fn line_chart(
    title: &str,
    x_labels: &[String],
    series: &[(String, Vec<f64>)],
    style: &PlotStyle,
) -> String {
    assert!(!x_labels.is_empty(), "need at least one x point");
    assert!(!series.is_empty(), "need at least one series");
    for (name, ys) in series {
        assert_eq!(ys.len(), x_labels.len(), "series `{name}` length mismatch");
        assert!(
            ys.iter().all(|y| y.is_finite()),
            "series `{name}` contains non-finite values"
        );
    }
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let (mut lo, mut hi) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| {
            (l.min(y), h.max(y))
        });
    if (hi - lo).abs() < 1e-12 {
        lo -= 0.5;
        hi += 0.5;
    }
    let pad = 0.05 * (hi - lo);
    let (lo, hi) = (lo - pad, hi + pad);

    let m = style.margin as f64;
    let pw = style.width as f64 - 2.0 * m;
    let ph = style.height as f64 - 2.0 * m;
    let x_of = |i: usize| {
        if x_labels.len() == 1 {
            m + pw / 2.0
        } else {
            m + pw * i as f64 / (x_labels.len() - 1) as f64
        }
    };
    let y_of = |v: f64| m + ph * (1.0 - (v - lo) / (hi - lo));

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="sans-serif" font-size="11">"#,
        style.width, style.height
    );
    let _ = writeln!(
        s,
        r#"<text x="{}" y="18" font-size="14" text-anchor="middle">{title}</text>"#,
        style.width / 2
    );
    // axes
    let _ = writeln!(
        s,
        r##"<line x1="{m}" y1="{}" x2="{}" y2="{}" stroke="#333"/>"##,
        m + ph,
        m + pw,
        m + ph
    );
    let _ = writeln!(
        s,
        r##"<line x1="{m}" y1="{m}" x2="{m}" y2="{}" stroke="#333"/>"##,
        m + ph
    );
    // y ticks (5)
    for k in 0..=4 {
        let v = lo + (hi - lo) * k as f64 / 4.0;
        let y = y_of(v);
        let _ = writeln!(
            s,
            r##"<line x1="{}" y1="{y:.1}" x2="{m}" y2="{y:.1}" stroke="#333"/><text x="{}" y="{:.1}" text-anchor="end">{v:.2}</text>"##,
            m - 4.0,
            m - 8.0,
            y + 4.0
        );
    }
    // x tick labels
    for (i, label) in x_labels.iter().enumerate() {
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{label}</text>"#,
            x_of(i),
            m + ph + 16.0
        );
    }
    // series
    for (si, (name, ys)) in series.iter().enumerate() {
        let color = series_color(si);
        let points: Vec<String> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| format!("{:.1},{:.1}", x_of(i), y_of(y)))
            .collect();
        let _ = writeln!(
            s,
            r#"<polyline fill="none" stroke="{color}" stroke-width="1.8" points="{}"/>"#,
            points.join(" ")
        );
        for p in &points {
            let (x, y) = p.split_once(',').expect("point format");
            let _ = writeln!(s, r#"<circle cx="{x}" cy="{y}" r="2.4" fill="{color}"/>"#);
        }
        // legend entry
        let ly = m + 14.0 * si as f64;
        let _ = writeln!(
            s,
            r#"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="{color}"/><text x="{:.1}" y="{:.1}">{name}</text>"#,
            m + pw + 6.0,
            ly,
            m + pw + 20.0,
            ly + 9.0
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn renders_all_series_and_points() {
        let svg = line_chart(
            "demo",
            &labels(3),
            &[
                ("A".into(), vec![1.0, 2.0, 3.0]),
                ("B".into(), vec![3.0, 2.0, 1.0]),
            ],
            &PlotStyle::default(),
        );
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains(">demo<"));
        assert!(svg.contains(">A<") && svg.contains(">B<"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn flat_series_get_a_synthetic_range() {
        let svg = line_chart(
            "flat",
            &labels(2),
            &[("C".into(), vec![5.0, 5.0])],
            &PlotStyle::default(),
        );
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn single_point_centers() {
        let svg = line_chart(
            "one",
            &labels(1),
            &[("D".into(), vec![2.0])],
            &PlotStyle::default(),
        );
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        line_chart(
            "bad",
            &labels(3),
            &[("E".into(), vec![1.0])],
            &PlotStyle::default(),
        );
    }
}
