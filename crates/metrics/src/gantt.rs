//! SVG Gantt-chart rendering of schedules — the figure generator for
//! papers, reports, and debugging sessions.

use std::fmt::Write as _;

use hetsched_core::Schedule;
use hetsched_platform::ProcId;

/// Rendering options for [`to_svg`].
#[derive(Debug, Clone, Copy)]
pub struct GanttStyle {
    /// Total chart width in pixels (time axis scales to fit).
    pub width: u32,
    /// Height of one processor lane in pixels.
    pub lane_height: u32,
    /// Left margin reserved for processor labels.
    pub label_margin: u32,
}

impl Default for GanttStyle {
    fn default() -> Self {
        GanttStyle {
            width: 800,
            lane_height: 28,
            label_margin: 40,
        }
    }
}

/// Deterministic pastel fill per task id (readable on white, stable
/// across renders).
fn task_color(task: u32) -> String {
    // golden-angle hue walk gives well-spread distinguishable hues
    let hue = (task as f64 * 137.508) % 360.0;
    format!("hsl({hue:.0}, 65%, 70%)")
}

/// Per-processor busy intervals of a schedule: for each lane, the
/// `(start, finish)` pair of every slot in start-time order. This is the
/// exact set of rectangles [`to_svg`] draws, exposed so other exporters of
/// the same schedule (the Chrome-trace lanes in `hetsched-trace`) can be
/// checked against the Gantt renderer interval for interval.
pub fn busy_intervals(sched: &Schedule) -> Vec<Vec<(f64, f64)>> {
    (0..sched.num_procs())
        .map(|p| {
            let mut lane: Vec<(f64, f64)> = sched
                .slots(ProcId(p as u32))
                .iter()
                .map(|s| (s.start, s.finish))
                .collect();
            lane.sort_by(|a, b| a.0.total_cmp(&b.0));
            lane
        })
        .collect()
}

/// Render `sched` as a standalone SVG document. One lane per processor,
/// one rectangle per slot; duplicates are drawn hatched (dashed border)
/// and labelled with `*`.
pub fn to_svg(sched: &Schedule, style: &GanttStyle) -> String {
    let makespan = sched.makespan().max(1e-12);
    let n_procs = sched.num_procs();
    let chart_w = style.width.saturating_sub(style.label_margin).max(1) as f64;
    let h = style.lane_height as f64;
    let total_h = (n_procs as u32 + 1) * style.lane_height + 20;
    let x_of = |t: f64| style.label_margin as f64 + t / makespan * chart_w;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="monospace" font-size="11">"#,
        style.width, total_h
    );
    let _ = writeln!(
        s,
        r#"<text x="{}" y="14">makespan = {:.4}</text>"#,
        style.label_margin,
        sched.makespan()
    );
    for p in 0..n_procs {
        let y = 20.0 + p as f64 * h;
        let _ = writeln!(s, r#"<text x="2" y="{:.1}">p{}</text>"#, y + h * 0.65, p);
        let _ = writeln!(
            s,
            r##"<line x1="{}" y1="{:.1}" x2="{}" y2="{:.1}" stroke="#ccc"/>"##,
            style.label_margin,
            y + h,
            style.width,
            y + h
        );
        for slot in sched.slots(ProcId(p as u32)) {
            let x = x_of(slot.start);
            let w = (x_of(slot.finish) - x).max(1.0);
            let stroke = if slot.duplicate {
                r##" stroke="#333" stroke-dasharray="3,2""##
            } else {
                r##" stroke="#333""##
            };
            let _ = writeln!(
                s,
                r#"<rect x="{x:.1}" y="{:.1}" width="{w:.1}" height="{:.1}" fill="{}"{stroke}/>"#,
                y + 2.0,
                h - 4.0,
                task_color(slot.task.0),
            );
            let label = if slot.duplicate {
                format!("{}*", slot.task)
            } else {
                slot.task.to_string()
            };
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}">{label}</text>"#,
                x + 2.0,
                y + h * 0.65,
            );
        }
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dag::TaskId;

    fn sample() -> Schedule {
        let mut s = Schedule::new(3, 2);
        s.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        s.insert(TaskId(1), ProcId(1), 1.0, 3.0).unwrap();
        s.insert_duplicate(TaskId(0), ProcId(1), 4.0, 2.0).unwrap();
        s.insert(TaskId(2), ProcId(0), 2.0, 1.0).unwrap();
        s
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = to_svg(&sample(), &GanttStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // one rect per slot
        assert_eq!(svg.matches("<rect").count(), 4);
        // duplicate hatched and starred
        assert_eq!(svg.matches("stroke-dasharray").count(), 1);
        assert!(svg.contains("t0*"));
        // both lanes labelled
        assert!(svg.contains(">p0<") && svg.contains(">p1<"));
        assert!(svg.contains("makespan = 4.0000"));
    }

    #[test]
    fn colors_are_stable_and_distinct() {
        assert_eq!(task_color(5), task_color(5));
        assert_ne!(task_color(1), task_color(2));
    }

    #[test]
    fn empty_schedule_renders() {
        let s = Schedule::new(1, 3);
        let svg = to_svg(&s, &GanttStyle::default());
        assert!(svg.contains("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 0);
    }

    #[test]
    fn busy_intervals_cover_every_slot_in_order() {
        let lanes = busy_intervals(&sample());
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0], vec![(0.0, 2.0), (2.0, 3.0)]);
        assert_eq!(lanes[1], vec![(1.0, 4.0), (4.0, 6.0)]);
    }

    /// The Chrome-trace exporter and the Gantt renderer are two views of
    /// the same schedule; their per-processor busy intervals must agree
    /// exactly, lane by lane.
    #[test]
    fn chrome_trace_lanes_agree_with_gantt_intervals() {
        use hetsched_core::traced_schedule;
        use hetsched_dag::builder::dag_from_edges;
        use hetsched_platform::{EtcMatrix, Network, System};

        let dag = dag_from_edges(
            &[2.0, 3.0, 3.0, 4.0, 2.0, 1.0],
            &[
                (0, 1, 4.0),
                (0, 2, 3.0),
                (1, 3, 2.0),
                (2, 3, 5.0),
                (2, 4, 1.0),
                (3, 5, 2.0),
                (4, 5, 3.0),
            ],
        )
        .unwrap();
        let etc = EtcMatrix::from_fn(6, 3, |t, p| 1.0 + ((t.index() * 3 + p.index()) % 5) as f64);
        let sys = System::new(etc, Network::unit(3));
        for alg_name in ["HEFT", "ILS-D"] {
            let alg = hetsched_core::algorithms::by_name(alg_name).unwrap();
            let (sched, trace) = traced_schedule(&alg, &dag, &sys);
            assert_eq!(
                hetsched_trace::chrome::lanes(&trace, sys.num_procs()),
                busy_intervals(&sched),
                "{alg_name}: Chrome-trace lanes diverge from Gantt intervals"
            );
        }
    }
}
