//! # hetsched-sim
//!
//! A discrete-event simulator that *executes* static schedules on the
//! platform model. It replaces the physical testbed of the original
//! evaluation (see DESIGN.md substitutions) and serves two purposes:
//!
//! 1. **Cross-checking** — with zero noise, replaying a schedule
//!    as-soon-as-possible under the same per-processor task order and the
//!    same communication semantics must finish no later than the
//!    scheduler's predicted makespan. Any violation is a scheduler or
//!    model bug; the test suites assert this for every algorithm.
//! 2. **Robustness studies** — execution and communication times can be
//!    perturbed by a [`noise::Noise`] model, measuring how gracefully each
//!    scheduler's plan degrades when reality disagrees with the ETC
//!    matrix (something the analytical makespan cannot measure).
//!
//! The simulator honours duplication: a consumer's dependency on a
//! predecessor is satisfied by whichever copy's message arrives first
//! (local copies deliver instantly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod noise;

pub use engine::{
    simulate, simulate_scenario, simulate_with, CommModel, Scenario, SimConfig, SimResult,
};
pub use noise::Noise;
