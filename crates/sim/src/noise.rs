//! Perturbation models for execution and communication times.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A multiplicative noise model applied to nominal durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Noise {
    /// No perturbation: durations are exactly the model's.
    None,
    /// Uniform factor in `[1 − spread, 1 + spread]`, `spread ∈ [0, 1)`.
    Uniform {
        /// Half-width of the factor interval.
        spread: f64,
    },
    /// Strictly positive right-skewed factor with mean 1 and the given
    /// coefficient of variation (gamma distributed) — the shape real
    /// execution-time jitter tends to have (occasional big slowdowns).
    Gamma {
        /// Coefficient of variation of the factor.
        cv: f64,
    },
}

impl Noise {
    /// Apply the model to a nominal duration. Zero durations stay zero;
    /// results are always non-negative and finite.
    ///
    /// # Panics
    /// Panics on invalid parameters (`spread ∉ [0, 1)`, `cv <= 0`).
    pub fn apply<R: Rng + ?Sized>(&self, nominal: f64, rng: &mut R) -> f64 {
        debug_assert!(nominal >= 0.0);
        if nominal == 0.0 {
            return 0.0;
        }
        match *self {
            Noise::None => nominal,
            Noise::Uniform { spread } => {
                assert!(
                    (0.0..1.0).contains(&spread),
                    "spread must be in [0, 1), got {spread}"
                );
                if spread == 0.0 {
                    nominal
                } else {
                    nominal * rng.gen_range(1.0 - spread..1.0 + spread)
                }
            }
            Noise::Gamma { cv } => nominal * hetsched_platform::dist::gamma_mean_cv(rng, 1.0, cv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Noise::None.apply(7.0, &mut rng), 7.0);
    }

    #[test]
    fn zero_stays_zero_under_all_models() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [
            Noise::None,
            Noise::Uniform { spread: 0.5 },
            Noise::Gamma { cv: 0.3 },
        ] {
            assert_eq!(n.apply(0.0, &mut rng), 0.0);
        }
    }

    #[test]
    fn uniform_stays_in_band_with_unit_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = Noise::Uniform { spread: 0.25 };
        let xs: Vec<f64> = (0..50_000).map(|_| n.apply(4.0, &mut rng)).collect();
        assert!(xs.iter().all(|&x| (3.0..5.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 4.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gamma_has_unit_mean_and_requested_cv() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = Noise::Gamma { cv: 0.5 };
        let xs: Vec<f64> = (0..100_000).map(|_| n.apply(1.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() / mean - 0.5).abs() < 0.02,
            "cv {}",
            var.sqrt() / mean
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "spread must be in")]
    fn uniform_rejects_bad_spread() {
        let mut rng = StdRng::seed_from_u64(5);
        Noise::Uniform { spread: 1.5 }.apply(1.0, &mut rng);
    }
}
