//! The discrete-event engine: as-soon-as-possible replay of a static
//! schedule with optional duration noise, systematic processor slowdowns,
//! and contention-aware communication models.
//!
//! The replay preserves two things from the static schedule — the
//! processor each copy runs on and the *order* of copies on each
//! processor — and re-derives every start time from event semantics:
//! a copy starts when its processor reaches it **and** every
//! predecessor's data has arrived at that processor (from whichever copy
//! delivers first). Nothing is taken from the schedule's precomputed
//! times, which is what makes this an independent cross-check.
//!
//! ## Communication models
//!
//! Static list schedulers assume **contention-free** links: any number of
//! messages flow simultaneously. The simulator can also replay under
//!
//! * [`CommModel::SinglePort`] — each processor owns one send port and one
//!   receive port; a message occupies both endpoints' ports for its whole
//!   transfer; queued messages dispatch first-fit in queueing order (a
//!   blocked message never holds up a later one whose ports are free);
//! * [`CommModel::SharedBus`] — one message in flight in the entire
//!   system (the classic bus).
//!
//! Under contention, the realized makespan can *exceed* the analytical
//! one — exactly the modelling error the contention literature studies.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::Schedule;
use serde::{Deserialize, Serialize};

use hetsched_dag::{Dag, TaskId};
use hetsched_platform::{ProcId, System};

use crate::noise::Noise;

/// Simulation configuration (noise + seed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Noise on execution durations.
    pub exec_noise: Noise,
    /// Noise on message transfer durations.
    pub comm_noise: Noise,
    /// RNG seed (the simulation is deterministic given the seed).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            exec_noise: Noise::None,
            comm_noise: Noise::None,
            seed: 0,
        }
    }
}

/// How concurrent messages share the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CommModel {
    /// Unlimited concurrent transfers (the schedulers' assumption).
    #[default]
    Contentionless,
    /// One outgoing and one incoming transfer per processor at a time.
    SinglePort,
    /// One transfer in the whole system at a time.
    SharedBus,
}

/// Scenario: systematic deviations from the model the scheduler saw.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// Per-processor execution-time multipliers (empty = all 1.0).
    pub proc_slowdown: Vec<f64>,
    /// Communication contention model.
    pub comm_model: CommModel,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Latest finish of any *primary* task copy.
    pub makespan: f64,
    /// Realized finish time of each task's primary copy.
    pub task_finish: Vec<f64>,
    /// Number of processed events (a complexity diagnostic).
    pub events: usize,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// A copy finished executing.
    Finish(u32),
    /// Data from predecessor `pred` arrived for copy `copy`.
    Arrive {
        /// Copy index.
        copy: u32,
        /// Predecessor task whose data arrived.
        pred: TaskId,
    },
    /// A message transfer completed; its ports are free again (dispatch
    /// retry happens after every event anyway — this event just wakes the
    /// loop at the right instant).
    PortsFree,
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

struct Copy {
    task: TaskId,
    proc: ProcId,
    /// Position of this copy on its processor's timeline.
    slot_index: usize,
    primary: bool,
    /// Predecessor tasks not yet delivered to this copy's processor.
    waiting: Vec<TaskId>,
    proc_free: bool,
    started: bool,
    finish: f64,
}

/// A remote message waiting for ports under a contention model.
struct PendingMsg {
    dst_copy: u32,
    pred: TaskId,
    src: ProcId,
    dst: ProcId,
    ready: f64,
    dur: f64,
}

/// Execute `sched` on `sys` under `config`'s noise models (contention-free
/// communication, no slowdowns).
///
/// ```
/// use hetsched_core::{algorithms::Heft, Scheduler};
/// use hetsched_dag::builder::dag_from_edges;
/// use hetsched_platform::System;
/// use hetsched_sim::{simulate, SimConfig};
///
/// let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 1.0)]).unwrap();
/// let sys = System::homogeneous_unit(&dag, 2);
/// let sched = Heft::new().schedule(&dag, &sys);
/// let replay = simulate(&dag, &sys, &sched, &SimConfig::default());
/// assert!(replay.makespan <= sched.makespan() + 1e-9);
/// ```
///
/// # Panics
/// Panics if the schedule is incomplete, or if the replay deadlocks
/// (possible only for schedules that violate precedence, which
/// `hetsched_core::validate` would reject).
pub fn simulate(dag: &Dag, sys: &System, sched: &Schedule, config: &SimConfig) -> SimResult {
    simulate_with(dag, sys, sched, config, &Scenario::default())
}

/// Like [`simulate`], with a per-processor slowdown vector
/// (`proc_slowdown[p]` multiplies every execution on `p`; empty = none).
///
/// # Panics
/// As [`simulate_with`].
pub fn simulate_scenario(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    config: &SimConfig,
    proc_slowdown: &[f64],
) -> SimResult {
    simulate_with(
        dag,
        sys,
        sched,
        config,
        &Scenario {
            proc_slowdown: proc_slowdown.to_vec(),
            comm_model: CommModel::Contentionless,
        },
    )
}

/// Full-control entry point: noise (`config`) plus systematic `scenario`
/// deviations (slowdowns, contention model).
///
/// # Panics
/// Panics if the schedule is incomplete; if the slowdown vector is
/// non-empty with the wrong length or non-positive factors; or if the
/// replay deadlocks (broken precedence).
pub fn simulate_with(
    dag: &Dag,
    sys: &System,
    sched: &Schedule,
    config: &SimConfig,
    scenario: &Scenario,
) -> SimResult {
    assert!(sched.is_complete(), "cannot simulate a partial schedule");
    if !scenario.proc_slowdown.is_empty() {
        assert_eq!(
            scenario.proc_slowdown.len(),
            sys.num_procs(),
            "slowdown vector must cover every processor"
        );
        assert!(
            scenario
                .proc_slowdown
                .iter()
                .all(|&f| f.is_finite() && f > 0.0),
            "slowdown factors must be positive and finite"
        );
    }
    let slow = |p: ProcId| -> f64 {
        if scenario.proc_slowdown.is_empty() {
            1.0
        } else {
            scenario.proc_slowdown[p.index()]
        }
    };
    let mut rng = StdRng::seed_from_u64(config.seed);

    // ---- build copy table -------------------------------------------------
    let mut copies: Vec<Copy> = Vec::new();
    let mut proc_copies: Vec<Vec<u32>> = vec![Vec::new(); sys.num_procs()];
    let mut task_copies: Vec<Vec<u32>> = vec![Vec::new(); dag.num_tasks()];
    for p in sys.proc_ids() {
        for (k, slot) in sched.slots(p).iter().enumerate() {
            let id = copies.len() as u32;
            copies.push(Copy {
                task: slot.task,
                proc: p,
                slot_index: k,
                primary: !slot.duplicate,
                waiting: dag.predecessors(slot.task).map(|(u, _)| u).collect(),
                proc_free: k == 0,
                started: false,
                finish: f64::INFINITY,
            });
            proc_copies[p.index()].push(id);
            task_copies[slot.task.index()].push(id);
        }
    }

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push =
        |heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            heap.push(Reverse(Event {
                time,
                seq: *seq,
                kind,
            }));
        };

    // contention state
    let mut send_free = vec![0.0f64; sys.num_procs()];
    let mut recv_free = vec![0.0f64; sys.num_procs()];
    let mut bus_free = 0.0f64;
    let mut pending: Vec<PendingMsg> = Vec::new();

    macro_rules! try_start {
        ($c:expr, $now:expr) => {{
            let c = $c as usize;
            if !copies[c].started && copies[c].proc_free && copies[c].waiting.is_empty() {
                copies[c].started = true;
                let dur = slow(copies[c].proc)
                    * config
                        .exec_noise
                        .apply(sys.exec_time(copies[c].task, copies[c].proc), &mut rng);
                let fin = $now + dur;
                copies[c].finish = fin;
                push(&mut heap, &mut seq, fin, EventKind::Finish(c as u32));
            }
        }};
    }

    for c in 0..copies.len() {
        try_start!(c, 0.0);
    }

    let mut processed = 0usize;
    while let Some(Reverse(Event { time, kind, .. })) = heap.pop() {
        processed += 1;
        match kind {
            EventKind::Finish(c) => {
                let c = c as usize;
                let (p, k, task, fin) = (
                    copies[c].proc,
                    copies[c].slot_index,
                    copies[c].task,
                    copies[c].finish,
                );
                if let Some(&next) = proc_copies[p.index()].get(k + 1) {
                    copies[next as usize].proc_free = true;
                    try_start!(next, time);
                }
                for (s, data) in dag.successors(task) {
                    for &sc in &task_copies[s.index()] {
                        let dst = copies[sc as usize].proc;
                        let delay = config
                            .comm_noise
                            .apply(sys.comm_time(data, p, dst), &mut rng);
                        if scenario.comm_model == CommModel::Contentionless || dst == p {
                            // local or uncontended: direct delivery
                            push(
                                &mut heap,
                                &mut seq,
                                fin + delay,
                                EventKind::Arrive {
                                    copy: sc,
                                    pred: task,
                                },
                            );
                        } else {
                            pending.push(PendingMsg {
                                dst_copy: sc,
                                pred: task,
                                src: p,
                                dst,
                                ready: fin,
                                dur: delay,
                            });
                            // wake the dispatcher at readiness (this very
                            // event's post-pass handles ready == time)
                            push(&mut heap, &mut seq, fin, EventKind::PortsFree);
                        }
                    }
                }
            }
            EventKind::Arrive { copy, pred } => {
                let c = copy as usize;
                if let Some(pos) = copies[c].waiting.iter().position(|&u| u == pred) {
                    copies[c].waiting.swap_remove(pos);
                    try_start!(c, time);
                }
            }
            EventKind::PortsFree => { /* dispatch pass below */ }
        }

        // dispatch pending messages first-fit in queue order under the
        // contention model (earlier-queued messages get first claim on
        // ports, but a blocked message does not delay dispatchable ones)
        if scenario.comm_model != CommModel::Contentionless {
            let mut i = 0;
            while i < pending.len() {
                let m = &pending[i];
                let can_go = m.ready <= time + 1e-12
                    && match scenario.comm_model {
                        CommModel::SinglePort => {
                            send_free[m.src.index()] <= time + 1e-12
                                && recv_free[m.dst.index()] <= time + 1e-12
                        }
                        CommModel::SharedBus => bus_free <= time + 1e-12,
                        CommModel::Contentionless => unreachable!(),
                    };
                if can_go {
                    let m = pending.remove(i);
                    let done = time + m.dur;
                    match scenario.comm_model {
                        CommModel::SinglePort => {
                            send_free[m.src.index()] = done;
                            recv_free[m.dst.index()] = done;
                        }
                        CommModel::SharedBus => bus_free = done,
                        CommModel::Contentionless => unreachable!(),
                    }
                    push(
                        &mut heap,
                        &mut seq,
                        done,
                        EventKind::Arrive {
                            copy: m.dst_copy,
                            pred: m.pred,
                        },
                    );
                    push(&mut heap, &mut seq, done, EventKind::PortsFree);
                    // restart the scan: freeing decisions are FIFO but an
                    // earlier-queued message may now block later ones
                    i = 0;
                } else {
                    i += 1;
                }
            }
        }
    }

    for c in &copies {
        assert!(
            c.started,
            "simulation deadlock: task {} on {} never became ready",
            c.task, c.proc
        );
    }

    let mut task_finish = vec![0.0f64; dag.num_tasks()];
    let mut makespan = 0.0f64;
    for c in &copies {
        if c.primary {
            task_finish[c.task.index()] = c.finish;
            makespan = makespan.max(c.finish);
        }
    }
    SimResult {
        makespan,
        task_finish,
        events: processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::algorithms::{all_heterogeneous, DupHeft};
    use hetsched_core::Scheduler;
    use hetsched_dag::builder::dag_from_edges;
    use hetsched_workloads::random_dag;
    use hetsched_workloads::RandomDagParams;
    use rand::Rng;

    #[test]
    fn replay_of_hand_schedule_matches_analytic_times() {
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched.insert(TaskId(1), ProcId(1), 6.0, 3.0).unwrap();
        let r = simulate(&dag, &sys, &sched, &SimConfig::default());
        assert_eq!(r.makespan, 9.0);
        assert_eq!(r.task_finish, vec![2.0, 9.0]);
    }

    #[test]
    fn replay_compacts_gratuitous_slack() {
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let mut sched = Schedule::new(2, 1);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched.insert(TaskId(1), ProcId(0), 10.0, 3.0).unwrap();
        let r = simulate(&dag, &sys, &sched, &SimConfig::default());
        assert_eq!(r.makespan, 5.0);
    }

    #[test]
    fn duplicate_copies_deliver_first_arrival_wins() {
        let dag = dag_from_edges(&[2.0, 1.0], &[(0, 1, 50.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched
            .insert_duplicate(TaskId(0), ProcId(1), 0.0, 2.0)
            .unwrap();
        sched.insert(TaskId(1), ProcId(1), 2.0, 1.0).unwrap();
        let r = simulate(&dag, &sys, &sched, &SimConfig::default());
        assert_eq!(r.makespan, 3.0);
    }

    #[test]
    fn noiseless_replay_never_exceeds_predicted_makespan() {
        let mut seed_rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let seed: u64 = seed_rng.gen();
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = random_dag(&RandomDagParams::new(40, 1.0, 2.0), &mut rng);
            let sys = System::heterogeneous_random(
                &dag,
                4,
                &hetsched_platform::EtcParams::range_based(1.0),
                &mut rng,
            );
            for alg in all_heterogeneous() {
                let sched = alg.schedule(&dag, &sys);
                let r = simulate(&dag, &sys, &sched, &SimConfig::default());
                assert!(
                    r.makespan <= sched.makespan() + 1e-6,
                    "{} seed {seed}: sim {} > predicted {}",
                    alg.name(),
                    r.makespan,
                    sched.makespan()
                );
            }
        }
    }

    #[test]
    fn noise_changes_makespan_and_is_seed_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let dag = random_dag(&RandomDagParams::new(50, 1.0, 1.0), &mut rng);
        let sys = System::heterogeneous_random(
            &dag,
            4,
            &hetsched_platform::EtcParams::range_based(0.5),
            &mut rng,
        );
        let sched = DupHeft::default().schedule(&dag, &sys);
        let noisy = SimConfig {
            exec_noise: Noise::Gamma { cv: 0.3 },
            comm_noise: Noise::Uniform { spread: 0.2 },
            seed: 11,
        };
        let a = simulate(&dag, &sys, &sched, &noisy);
        let b = simulate(&dag, &sys, &sched, &noisy);
        assert_eq!(a.makespan, b.makespan, "same seed, same result");
        let c = simulate(&dag, &sys, &sched, &SimConfig { seed: 12, ..noisy });
        assert_ne!(a.makespan, c.makespan, "different seed, different run");
    }

    #[test]
    fn mean_noisy_makespan_exceeds_noiseless() {
        let mut rng = StdRng::seed_from_u64(9);
        let dag = random_dag(&RandomDagParams::new(60, 1.0, 1.0), &mut rng);
        let sys = System::homogeneous_unit(&dag, 4);
        let sched = hetsched_core::algorithms::Heft::default().schedule(&dag, &sys);
        let base = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
        let mean_noisy: f64 = (0..40)
            .map(|s| {
                simulate(
                    &dag,
                    &sys,
                    &sched,
                    &SimConfig {
                        exec_noise: Noise::Gamma { cv: 0.5 },
                        comm_noise: Noise::None,
                        seed: s,
                    },
                )
                .makespan
            })
            .sum::<f64>()
            / 40.0;
        assert!(mean_noisy > base, "mean noisy {mean_noisy} vs base {base}");
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_slowdown_matches_plain_simulation() {
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched.insert(TaskId(1), ProcId(0), 2.0, 3.0).unwrap();
        let plain = simulate(&dag, &sys, &sched, &SimConfig::default());
        let unit = simulate_scenario(&dag, &sys, &sched, &SimConfig::default(), &[1.0, 1.0]);
        assert_eq!(plain.makespan, unit.makespan);
    }

    #[test]
    fn slowdown_on_busy_processor_stretches_makespan() {
        let dag = dag_from_edges(&[2.0, 3.0], &[(0, 1, 0.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(2, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched.insert(TaskId(1), ProcId(0), 2.0, 3.0).unwrap();
        let r = simulate_scenario(&dag, &sys, &sched, &SimConfig::default(), &[2.0, 1.0]);
        assert_eq!(r.makespan, 10.0, "both tasks run twice as long");
        let r2 = simulate_scenario(&dag, &sys, &sched, &SimConfig::default(), &[1.0, 5.0]);
        assert_eq!(r2.makespan, 5.0);
    }

    #[test]
    #[should_panic(expected = "cover every processor")]
    fn slowdown_length_mismatch_panics() {
        let dag = dag_from_edges(&[1.0], &[]).unwrap();
        let sys = System::homogeneous_unit(&dag, 2);
        let mut sched = Schedule::new(1, 2);
        sched.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        simulate_scenario(&dag, &sys, &sched, &SimConfig::default(), &[1.0]);
    }

    /// Broadcast fixture: t0 on p0 feeds t1 on p1 and t2 on p2, both edges
    /// carrying 4 units over a unit network.
    fn broadcast() -> (Dag, System, Schedule) {
        let dag = dag_from_edges(&[2.0, 1.0, 1.0], &[(0, 1, 4.0), (0, 2, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 3);
        let mut sched = Schedule::new(3, 3);
        sched.insert(TaskId(0), ProcId(0), 0.0, 2.0).unwrap();
        sched.insert(TaskId(1), ProcId(1), 6.0, 1.0).unwrap();
        sched.insert(TaskId(2), ProcId(2), 6.0, 1.0).unwrap();
        (dag, sys, sched)
    }

    use hetsched_dag::Dag;

    #[test]
    fn single_port_serializes_broadcast_sends() {
        let (dag, sys, sched) = broadcast();
        // contention-free: both messages arrive at 6; makespan 7
        let free = simulate(&dag, &sys, &sched, &SimConfig::default());
        assert_eq!(free.makespan, 7.0);
        // single-port: p0 sends one message at a time; second arrives at 10
        let sp = simulate_with(
            &dag,
            &sys,
            &sched,
            &SimConfig::default(),
            &Scenario {
                proc_slowdown: vec![],
                comm_model: CommModel::SinglePort,
            },
        );
        assert_eq!(sp.makespan, 11.0, "second consumer waits for the port");
    }

    #[test]
    fn shared_bus_is_at_least_as_contended_as_single_port() {
        let (dag, sys, sched) = broadcast();
        let sp = simulate_with(
            &dag,
            &sys,
            &sched,
            &SimConfig::default(),
            &Scenario {
                proc_slowdown: vec![],
                comm_model: CommModel::SinglePort,
            },
        )
        .makespan;
        let bus = simulate_with(
            &dag,
            &sys,
            &sched,
            &SimConfig::default(),
            &Scenario {
                proc_slowdown: vec![],
                comm_model: CommModel::SharedBus,
            },
        )
        .makespan;
        assert!(bus >= sp - 1e-9, "bus {bus} vs single-port {sp}");
        assert_eq!(bus, 11.0);
    }

    #[test]
    fn single_port_leaves_disjoint_transfers_concurrent() {
        // two independent chains on disjoint processor pairs: no shared
        // port, so single-port changes nothing (but the bus serializes).
        let dag = dag_from_edges(&[1.0, 1.0, 1.0, 1.0], &[(0, 1, 4.0), (2, 3, 4.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 4);
        let mut sched = Schedule::new(4, 4);
        sched.insert(TaskId(0), ProcId(0), 0.0, 1.0).unwrap();
        sched.insert(TaskId(2), ProcId(1), 0.0, 1.0).unwrap();
        sched.insert(TaskId(1), ProcId(2), 5.0, 1.0).unwrap();
        sched.insert(TaskId(3), ProcId(3), 5.0, 1.0).unwrap();
        let free = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
        let sp = simulate_with(
            &dag,
            &sys,
            &sched,
            &SimConfig::default(),
            &Scenario {
                proc_slowdown: vec![],
                comm_model: CommModel::SinglePort,
            },
        )
        .makespan;
        assert_eq!(free, 6.0);
        assert_eq!(sp, 6.0, "disjoint transfers need no serialization");
        let bus = simulate_with(
            &dag,
            &sys,
            &sched,
            &SimConfig::default(),
            &Scenario {
                proc_slowdown: vec![],
                comm_model: CommModel::SharedBus,
            },
        )
        .makespan;
        assert_eq!(bus, 10.0, "bus serializes the two transfers");
    }

    #[test]
    fn contention_never_beats_contentionless_on_random_schedules() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = random_dag(&RandomDagParams::new(30, 1.0, 3.0), &mut rng);
            let sys = System::heterogeneous_random(
                &dag,
                4,
                &hetsched_platform::EtcParams::range_based(1.0),
                &mut rng,
            );
            let sched = hetsched_core::algorithms::Heft::new().schedule(&dag, &sys);
            let free = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
            for model in [CommModel::SinglePort, CommModel::SharedBus] {
                let contended = simulate_with(
                    &dag,
                    &sys,
                    &sched,
                    &SimConfig::default(),
                    &Scenario {
                        proc_slowdown: vec![],
                        comm_model: model,
                    },
                )
                .makespan;
                assert!(
                    contended >= free - 1e-9,
                    "seed {seed} {model:?}: contended {contended} < free {free}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "partial schedule")]
    fn rejects_incomplete_schedule() {
        let dag = dag_from_edges(&[1.0, 1.0], &[(0, 1, 1.0)]).unwrap();
        let sys = System::homogeneous_unit(&dag, 1);
        let sched = Schedule::new(2, 1);
        simulate(&dag, &sys, &sched, &SimConfig::default());
    }
}
