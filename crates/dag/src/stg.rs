//! Reader/writer for the STG (Standard Task Graph) text format of the
//! Kasahara benchmark suite — the de-facto interchange format for
//! homogeneous task-scheduling benchmarks.
//!
//! Format (whitespace-separated, `#` starts a comment to end-of-line):
//!
//! ```text
//! <task count n>
//! <task id> <processing time> <pred count k> <pred id> * k
//! ...            # one line per task, ids 0..n-1 in order
//! ```
//!
//! STG carries no edge data volumes (it targets homogeneous machines with
//! uniform transfer costs); [`parse_stg`] takes a `comm` value applied to
//! every edge so heterogeneous experiments can still set a CCR.

use std::fmt::Write as _;

use crate::builder::DagBuilder;
use crate::{Dag, DagError, TaskId};

/// Errors from STG parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum StgError {
    /// The token stream ended early or a token was not a number.
    Syntax(String),
    /// Task ids were not the dense sequence `0..n`.
    BadTaskId {
        /// Expected id at this position.
        expected: u32,
        /// Id actually read.
        found: u32,
    },
    /// The parsed structure failed DAG validation.
    Graph(DagError),
}

impl core::fmt::Display for StgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StgError::Syntax(m) => write!(f, "STG syntax error: {m}"),
            StgError::BadTaskId { expected, found } => {
                write!(
                    f,
                    "STG task ids must be dense: expected {expected}, found {found}"
                )
            }
            StgError::Graph(e) => write!(f, "STG graph invalid: {e}"),
        }
    }
}

impl std::error::Error for StgError {}

/// Parse STG text into a [`Dag`], charging `comm` data units on every edge.
///
/// ```
/// use hetsched_dag::stg::parse_stg;
/// let dag = parse_stg("2\n0 1.5 0\n1 2.5 1 0\n", 3.0).unwrap();
/// assert_eq!(dag.num_tasks(), 2);
/// assert_eq!(dag.edge_data(hetsched_dag::TaskId(0), hetsched_dag::TaskId(1)), Some(3.0));
/// ```
///
/// # Errors
/// [`StgError`] on malformed input or an invalid graph.
pub fn parse_stg(text: &str, comm: f64) -> Result<Dag, StgError> {
    // strip comments, tokenize
    let mut tokens = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .flat_map(|l| l.split_whitespace().map(String::from).collect::<Vec<_>>());
    let next_u32 =
        |what: &str, tokens: &mut dyn Iterator<Item = String>| -> Result<u32, StgError> {
            let tok = tokens.next().ok_or_else(|| {
                StgError::Syntax(format!("unexpected end of input reading {what}"))
            })?;
            tok.parse()
                .map_err(|_| StgError::Syntax(format!("expected integer for {what}, got `{tok}`")))
        };
    let next_f64 =
        |what: &str, tokens: &mut dyn Iterator<Item = String>| -> Result<f64, StgError> {
            let tok = tokens.next().ok_or_else(|| {
                StgError::Syntax(format!("unexpected end of input reading {what}"))
            })?;
            tok.parse()
                .map_err(|_| StgError::Syntax(format!("expected number for {what}, got `{tok}`")))
        };

    let n = next_u32("task count", &mut tokens)?;
    if n == 0 {
        return Err(StgError::Graph(DagError::Empty));
    }
    let mut b = DagBuilder::with_capacity(n as usize, 2 * n as usize);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for expected in 0..n {
        let id = next_u32("task id", &mut tokens)?;
        if id != expected {
            return Err(StgError::BadTaskId {
                expected,
                found: id,
            });
        }
        let weight = next_f64("processing time", &mut tokens)?;
        b.add_task(weight);
        let k = next_u32("predecessor count", &mut tokens)?;
        for _ in 0..k {
            let pred = next_u32("predecessor id", &mut tokens)?;
            edges.push((pred, id));
        }
    }
    for (u, v) in edges {
        b.add_edge(TaskId(u), TaskId(v), comm)
            .map_err(StgError::Graph)?;
    }
    b.build().map_err(StgError::Graph)
}

/// Serialize a [`Dag`] to STG text (edge data volumes are dropped — STG
/// has no field for them; a header comment records the mean).
pub fn to_stg(dag: &Dag) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# hetsched STG export: {} tasks, {} edges, mean edge data {:.4}",
        dag.num_tasks(),
        dag.num_edges(),
        dag.mean_edge_data()
    );
    let _ = writeln!(s, "{}", dag.num_tasks());
    for t in dag.task_ids() {
        let _ = write!(s, "{} {} {}", t.0, dag.task_weight(t), dag.in_degree(t));
        for (p, _) in dag.predecessors(t) {
            let _ = write!(s, " {}", p.0);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a diamond with a header comment
4
0 2.0 0
1 3.0 1 0     # left branch
2 4.0 1 0
3 1.0 2 1 2
";

    #[test]
    fn parses_the_sample() {
        let dag = parse_stg(SAMPLE, 5.0).unwrap();
        assert_eq!(dag.num_tasks(), 4);
        assert_eq!(dag.num_edges(), 4);
        assert_eq!(dag.task_weight(TaskId(2)), 4.0);
        assert_eq!(dag.edge_data(TaskId(0), TaskId(1)), Some(5.0));
        assert_eq!(dag.in_degree(TaskId(3)), 2);
        assert_eq!(dag.entry_tasks().count(), 1);
        assert_eq!(dag.exit_tasks().count(), 1);
    }

    #[test]
    fn round_trips_structure() {
        let dag = parse_stg(SAMPLE, 1.0).unwrap();
        let text = to_stg(&dag);
        let back = parse_stg(&text, 1.0).unwrap();
        assert_eq!(back.num_tasks(), dag.num_tasks());
        assert_eq!(back.num_edges(), dag.num_edges());
        for t in dag.task_ids() {
            assert_eq!(back.task_weight(t), dag.task_weight(t));
            assert_eq!(back.in_degree(t), dag.in_degree(t));
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(matches!(parse_stg("", 1.0), Err(StgError::Syntax(_))));
        assert!(matches!(
            parse_stg("2\n0 1.0 0\n", 1.0),
            Err(StgError::Syntax(_))
        ));
        assert!(matches!(
            parse_stg("1\n0 abc 0\n", 1.0),
            Err(StgError::Syntax(_))
        ));
        assert!(matches!(
            parse_stg("2\n0 1.0 0\n5 1.0 0\n", 1.0),
            Err(StgError::BadTaskId {
                expected: 1,
                found: 5
            })
        ));
    }

    #[test]
    fn graph_errors_surface() {
        // predecessor referencing a later-but-valid id is fine (forward
        // declaration of edges is allowed by the builder)...
        let ok = parse_stg("2\n0 1.0 1 1\n1 1.0 0\n", 1.0);
        // ...this creates edge 1 -> 0, which is a valid DAG
        assert!(ok.is_ok());
        // ...but a self-loop is not
        assert!(matches!(
            parse_stg("1\n0 1.0 1 0\n", 1.0),
            Err(StgError::Graph(DagError::SelfLoop(_)))
        ));
        // zero tasks
        assert!(matches!(
            parse_stg("0\n", 1.0),
            Err(StgError::Graph(DagError::Empty))
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# lead\n\n3\n# mid\n0 1 0\n1 1 1 0\n\n2 1 1 1\n# tail\n";
        let dag = parse_stg(text, 0.5).unwrap();
        assert_eq!(dag.num_tasks(), 3);
        assert_eq!(dag.num_edges(), 2);
    }
}
