use serde::{Deserialize, Serialize};

/// Identifier of a task (a node of a [`crate::Dag`]).
///
/// Task ids are dense indices assigned by [`crate::DagBuilder::add_task`] in
/// insertion order: the `i`-th added task has id `i`. They are a `u32`
/// newtype rather than `usize` so oft-instantiated per-task tables stay
/// small (see the type-size guidance in the Rust Performance Book).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task id as a `usize` index into per-task tables.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index (inverse of [`TaskId::index`]).
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        TaskId(u32::try_from(i).expect("task index exceeds u32::MAX"))
    }
}

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl core::fmt::Debug for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TaskId({})", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        TaskId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in [0usize, 1, 17, 4_000_000] {
            assert_eq!(TaskId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TaskId(7).to_string(), "t7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TaskId(3) < TaskId(4));
        assert_eq!(TaskId(5), TaskId::from(5));
    }

    #[test]
    fn id_is_four_bytes() {
        assert_eq!(core::mem::size_of::<TaskId>(), 4);
    }
}
