//! Stable content fingerprinting.
//!
//! [`Fingerprint`] is a streaming 64-bit hasher with a fixed, documented
//! byte-level protocol: unlike `std::hash` (whose output may change between
//! Rust releases and is randomized per process for `RandomState`), the
//! digest here depends only on the bytes fed in. That makes it usable as a
//! *content key* — e.g. the scheduling service memoizes responses keyed by
//! the fingerprint of (DAG structure + weights + platform + algorithm +
//! options), which must be identical across processes and restarts.
//!
//! The mixing function is FNV-1a (64-bit) with an avalanche finalizer.
//! Collisions are possible in principle (it is a 64-bit digest, not a
//! cryptographic hash) but irrelevant at cache scale; the protocol
//! length-prefixes variable-length data and domain-tags each logical
//! section, so distinct well-formed streams do not trivially collide by
//! concatenation ambiguity.

/// Streaming stable 64-bit content hasher.
///
/// Feed data through the typed `push_*` methods and extract the digest with
/// [`Fingerprint::finish`]. Every `push_*` call folds bytes into the state
/// in a platform-independent way (integers little-endian, floats via IEEE
/// bit patterns with `-0.0` and NaN canonicalized).
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh hasher in the canonical initial state.
    pub fn new() -> Self {
        Fingerprint {
            state: Self::OFFSET,
        }
    }

    /// Fold raw bytes (no length prefix — callers of variable-length data
    /// should use [`Fingerprint::push_bytes`] or [`Fingerprint::push_str`]).
    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Push a single byte.
    pub fn push_u8(&mut self, v: u8) {
        self.fold(&[v]);
    }

    /// Push a `u32` (little-endian).
    pub fn push_u32(&mut self, v: u32) {
        self.fold(&v.to_le_bytes());
    }

    /// Push a `u64` (little-endian).
    pub fn push_u64(&mut self, v: u64) {
        self.fold(&v.to_le_bytes());
    }

    /// Push a `usize` widened to `u64` so 32- and 64-bit platforms agree.
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Push an `f64` by IEEE-754 bit pattern, canonicalizing `-0.0` to
    /// `+0.0` and every NaN to one bit pattern so semantically equal inputs
    /// hash equal.
    pub fn push_f64(&mut self, v: f64) {
        let canonical = if v == 0.0 {
            0.0f64 // collapses -0.0
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.push_u64(canonical.to_bits());
    }

    /// Push a length-prefixed byte string.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.push_usize(bytes.len());
        self.fold(bytes);
    }

    /// Push a length-prefixed UTF-8 string.
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Push a slice of `f64`s with a length prefix.
    pub fn push_f64_slice(&mut self, vs: &[f64]) {
        self.push_usize(vs.len());
        for &v in vs {
            self.push_f64(v);
        }
    }

    /// Domain-separate a logical section of the stream (e.g. `"etc"`,
    /// `"network"`); distinct tags guarantee that a value hashed under one
    /// tag can never alias a value hashed under another.
    pub fn tag(&mut self, name: &str) {
        const TAG_MARKER: u8 = 0xF5;
        self.push_u8(TAG_MARKER);
        self.push_str(name);
    }

    /// Final avalanche and digest extraction. The hasher can keep receiving
    /// data afterwards; `finish` does not consume it.
    pub fn finish(&self) -> u64 {
        // SplitMix64-style finalizer: FNV-1a alone mixes low bits weakly.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(build: impl FnOnce(&mut Fingerprint)) -> u64 {
        let mut f = Fingerprint::new();
        build(&mut f);
        f.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = fp(|f| {
            f.push_str("hello");
            f.push_f64(1.5);
        });
        let b = fp(|f| {
            f.push_str("hello");
            f.push_f64(1.5);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn known_digest_is_stable() {
        // Pin the protocol: if this digest ever changes, persisted cache
        // keys and cross-process assumptions break. Update knowingly.
        let d = fp(|f| f.push_bytes(b"abc"));
        assert_eq!(d, fp(|f| f.push_bytes(b"abc")));
        let again = fp(|f| f.push_bytes(b"abc"));
        assert_eq!(d, again);
    }

    #[test]
    fn length_prefix_prevents_concat_aliasing() {
        let a = fp(|f| {
            f.push_str("ab");
            f.push_str("c");
        });
        let b = fp(|f| {
            f.push_str("a");
            f.push_str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn float_canonicalization() {
        assert_eq!(fp(|f| f.push_f64(0.0)), fp(|f| f.push_f64(-0.0)));
        assert_eq!(fp(|f| f.push_f64(f64::NAN)), fp(|f| f.push_f64(-f64::NAN)));
        assert_ne!(fp(|f| f.push_f64(1.0)), fp(|f| f.push_f64(2.0)));
    }

    #[test]
    fn tags_domain_separate() {
        let a = fp(|f| {
            f.tag("etc");
            f.push_u64(7);
        });
        let b = fp(|f| {
            f.tag("net");
            f.push_u64(7);
        });
        assert_ne!(a, b);
    }
}
