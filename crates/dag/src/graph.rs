//! The [`Dag`] type: an immutable, validated task graph in CSR form.

use serde::{Deserialize, Serialize};

use crate::TaskId;

/// A directed edge of a task graph.
///
/// `data` is the volume of data task `src` sends to task `dst` (abstract
/// units; the platform model divides it by link bandwidth to get seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Data volume transferred along this edge.
    pub data: f64,
}

/// An immutable task graph.
///
/// Construct one with [`crate::DagBuilder`]; every `Dag` built that way is
/// acyclic, has at least one task, only finite non-negative weights, and no
/// duplicate edges — the read API below can therefore never fail.
///
/// **Serde caveat:** the derived `Deserialize` restores fields verbatim and
/// does *not* re-validate these invariants; deserialize only data this
/// library serialized. For untrusted input use [`crate::io::DagSpec`],
/// which funnels through the validating builder.
///
/// Storage is CSR in both directions: `edges` is sorted by `(src, dst)` and
/// `succ_off` indexes it per source task; `pred_edges` lists edge indices
/// grouped by destination task under `pred_off`. Successor and predecessor
/// scans are contiguous.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dag {
    pub(crate) weights: Vec<f64>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) succ_off: Vec<u32>,
    pub(crate) pred_off: Vec<u32>,
    pub(crate) pred_edges: Vec<u32>,
    pub(crate) topo: Vec<TaskId>,
    pub(crate) entries: Vec<TaskId>,
    pub(crate) exits: Vec<TaskId>,
}

impl Dag {
    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all task ids in index order (`t0, t1, ...`).
    pub fn task_ids(&self) -> impl ExactSizeIterator<Item = TaskId> + Clone {
        (0..self.weights.len() as u32).map(TaskId)
    }

    /// Computation weight (abstract work units) of `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range for this graph.
    #[inline]
    pub fn task_weight(&self, t: TaskId) -> f64 {
        self.weights[t.index()]
    }

    /// Sum of all task weights (the sequential work of the application).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// All edges, sorted by `(src, dst)`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of `t` as a contiguous slice.
    #[inline]
    pub fn out_edges(&self, t: TaskId) -> &[Edge] {
        let lo = self.succ_off[t.index()] as usize;
        let hi = self.succ_off[t.index() + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Successors of `t` with the data volume on the connecting edge.
    pub fn successors(&self, t: TaskId) -> impl ExactSizeIterator<Item = (TaskId, f64)> + '_ {
        self.out_edges(t).iter().map(|e| (e.dst, e.data))
    }

    /// Incoming edges of `t` (as references into the shared edge table).
    pub fn in_edges(&self, t: TaskId) -> impl ExactSizeIterator<Item = &Edge> + '_ {
        let lo = self.pred_off[t.index()] as usize;
        let hi = self.pred_off[t.index() + 1] as usize;
        self.pred_edges[lo..hi]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Predecessors of `t` with the data volume on the connecting edge.
    pub fn predecessors(&self, t: TaskId) -> impl ExactSizeIterator<Item = (TaskId, f64)> + '_ {
        self.in_edges(t).map(|e| (e.src, e.data))
    }

    /// Number of outgoing edges of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> usize {
        (self.succ_off[t.index() + 1] - self.succ_off[t.index()]) as usize
    }

    /// Number of incoming edges of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> usize {
        (self.pred_off[t.index() + 1] - self.pred_off[t.index()]) as usize
    }

    /// Data volume of edge `(u, v)`, or `None` if the edge does not exist.
    ///
    /// Binary search over the sorted out-edge slice of `u`: `O(log deg(u))`.
    pub fn edge_data(&self, u: TaskId, v: TaskId) -> Option<f64> {
        let es = self.out_edges(u);
        es.binary_search_by_key(&v, |e| e.dst)
            .ok()
            .map(|i| es[i].data)
    }

    /// Whether edge `(u, v)` exists.
    pub fn has_edge(&self, u: TaskId, v: TaskId) -> bool {
        self.edge_data(u, v).is_some()
    }

    /// A topological order of the tasks, fixed at build time.
    ///
    /// The order is deterministic for a given builder input (Kahn's
    /// algorithm with a smallest-id-first tie-break), so downstream
    /// schedulers are reproducible.
    #[inline]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Tasks with no predecessors, in id order.
    pub fn entry_tasks(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        self.entries.iter().copied()
    }

    /// Tasks with no successors, in id order.
    pub fn exit_tasks(&self) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        self.exits.iter().copied()
    }

    /// Whether `t` has no predecessors.
    #[inline]
    pub fn is_entry(&self, t: TaskId) -> bool {
        self.in_degree(t) == 0
    }

    /// Whether `t` has no successors.
    #[inline]
    pub fn is_exit(&self, t: TaskId) -> bool {
        self.out_degree(t) == 0
    }

    /// Mean data volume over all edges (0 for an edge-less graph).
    pub fn mean_edge_data(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.edges.iter().map(|e| e.data).sum::<f64>() / self.edges.len() as f64
        }
    }

    /// Mean task weight.
    pub fn mean_task_weight(&self) -> f64 {
        self.total_weight() / self.num_tasks() as f64
    }

    /// Communication-to-computation ratio of this graph: total edge data
    /// divided by total task weight. With unit-speed processors and
    /// unit-bandwidth links this is the classic CCR.
    pub fn ccr(&self) -> f64 {
        let w = self.total_weight();
        if w == 0.0 {
            0.0
        } else {
            self.edges.iter().map(|e| e.data).sum::<f64>() / w
        }
    }

    /// Stable 64-bit fingerprint of the graph's *content*: task weights and
    /// the sorted edge list with data volumes.
    ///
    /// Two `Dag`s built from the same task set and edge set always hash
    /// equal regardless of insertion order (the builder canonicalizes edges
    /// by `(src, dst)`), and any change to a weight, an edge endpoint, or an
    /// edge's data volume changes the digest. Derived CSR arrays are not
    /// hashed — they are functions of the edge list. The digest is stable
    /// across processes and platforms; see [`crate::fingerprint`].
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = crate::Fingerprint::new();
        self.fold_fingerprint(&mut fp);
        fp.finish()
    }

    /// Fold this graph's content into an existing [`crate::Fingerprint`]
    /// stream (used by callers that key on a DAG *plus* other request
    /// state, e.g. the scheduling service's memoization cache).
    pub fn fold_fingerprint(&self, fp: &mut crate::Fingerprint) {
        fp.tag("dag");
        fp.push_f64_slice(&self.weights);
        fp.push_usize(self.edges.len());
        for e in &self.edges {
            fp.push_u32(e.src.0);
            fp.push_u32(e.dst.0);
            fp.push_f64(e.data);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::DagBuilder;
    use crate::TaskId;

    /// Diamond: a -> b, a -> c, b -> d, c -> d.
    fn diamond() -> crate::Dag {
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let t1 = b.add_task(2.0);
        let t2 = b.add_task(3.0);
        let d = b.add_task(4.0);
        b.add_edge(a, t1, 10.0).unwrap();
        b.add_edge(a, t2, 20.0).unwrap();
        b.add_edge(t1, d, 30.0).unwrap();
        b.add_edge(t2, d, 40.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.total_weight(), 10.0);
        assert_eq!(g.mean_task_weight(), 2.5);
        assert_eq!(g.mean_edge_data(), 25.0);
        assert_eq!(g.ccr(), 10.0);
    }

    #[test]
    fn adjacency() {
        let g = diamond();
        let (a, b, c, d) = (TaskId(0), TaskId(1), TaskId(2), TaskId(3));
        assert_eq!(
            g.successors(a).collect::<Vec<_>>(),
            vec![(b, 10.0), (c, 20.0)]
        );
        assert_eq!(
            g.predecessors(d).collect::<Vec<_>>(),
            vec![(b, 30.0), (c, 40.0)]
        );
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.in_degree(a), 0);
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        assert_eq!(g.edge_data(TaskId(0), TaskId(1)), Some(10.0));
        assert_eq!(g.edge_data(TaskId(1), TaskId(0)), None);
        assert!(g.has_edge(TaskId(2), TaskId(3)));
        assert!(!g.has_edge(TaskId(0), TaskId(3)));
    }

    #[test]
    fn entries_and_exits() {
        let g = diamond();
        assert_eq!(g.entry_tasks().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(g.exit_tasks().collect::<Vec<_>>(), vec![TaskId(3)]);
        assert!(g.is_entry(TaskId(0)));
        assert!(g.is_exit(TaskId(3)));
        assert!(!g.is_entry(TaskId(1)));
        assert!(!g.is_exit(TaskId(1)));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.num_tasks()];
            for (i, t) in g.topo_order().iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn single_task_graph() {
        let mut b = DagBuilder::new();
        b.add_task(5.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_tasks(), 1);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_entry(TaskId(0)) && g.is_exit(TaskId(0)));
        assert_eq!(g.ccr(), 0.0);
        assert_eq!(g.mean_edge_data(), 0.0);
    }

    #[test]
    fn dag_is_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<crate::Dag>();
        assert_serde::<crate::Edge>();
    }

    #[test]
    fn fingerprint_identical_graphs_hash_equal() {
        assert_eq!(
            diamond().content_fingerprint(),
            diamond().content_fingerprint()
        );
        // Insertion order does not matter: the builder canonicalizes edges.
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let t1 = b.add_task(2.0);
        let t2 = b.add_task(3.0);
        let d = b.add_task(4.0);
        b.add_edge(t2, d, 40.0).unwrap();
        b.add_edge(t1, d, 30.0).unwrap();
        b.add_edge(a, t2, 20.0).unwrap();
        b.add_edge(a, t1, 10.0).unwrap();
        let reordered = b.build().unwrap();
        assert_eq!(
            reordered.content_fingerprint(),
            diamond().content_fingerprint()
        );
    }

    #[test]
    fn fingerprint_sees_every_content_change() {
        let base = diamond().content_fingerprint();

        // One task weight changed.
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let t1 = b.add_task(2.5);
        let t2 = b.add_task(3.0);
        let d = b.add_task(4.0);
        b.add_edge(a, t1, 10.0).unwrap();
        b.add_edge(a, t2, 20.0).unwrap();
        b.add_edge(t1, d, 30.0).unwrap();
        b.add_edge(t2, d, 40.0).unwrap();
        assert_ne!(b.build().unwrap().content_fingerprint(), base);

        // One edge data volume changed.
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let t1 = b.add_task(2.0);
        let t2 = b.add_task(3.0);
        let d = b.add_task(4.0);
        b.add_edge(a, t1, 10.0).unwrap();
        b.add_edge(a, t2, 20.0).unwrap();
        b.add_edge(t1, d, 30.5).unwrap();
        b.add_edge(t2, d, 40.0).unwrap();
        assert_ne!(b.build().unwrap().content_fingerprint(), base);

        // One edge rerouted.
        let mut b = DagBuilder::new();
        let a = b.add_task(1.0);
        let t1 = b.add_task(2.0);
        let t2 = b.add_task(3.0);
        let d = b.add_task(4.0);
        b.add_edge(a, t1, 10.0).unwrap();
        b.add_edge(a, t2, 20.0).unwrap();
        b.add_edge(t1, d, 30.0).unwrap();
        b.add_edge(t1, t2, 40.0).unwrap();
        assert_ne!(b.build().unwrap().content_fingerprint(), base);
    }
}
