//! # hetsched-dag
//!
//! Directed-acyclic task-graph (DAG) substrate for the `hetsched` static
//! scheduler family.
//!
//! A task graph `G = (V, E)` models an application: each node is a task with
//! an abstract *computation weight* (work units; the platform model turns it
//! into seconds per processor), and each directed edge carries a *data
//! volume* that must be communicated when the endpoints run on different
//! processors.
//!
//! The graph is stored in compressed-sparse-row (CSR) form in both
//! directions, so successor and predecessor scans are contiguous memory
//! walks — the access pattern every list scheduler in `hetsched-core` is
//! built around.
//!
//! ## Quick example
//!
//! ```
//! use hetsched_dag::{DagBuilder, TaskId};
//!
//! let mut b = DagBuilder::new();
//! let a = b.add_task(3.0);
//! let c = b.add_task(2.0);
//! let d = b.add_task(4.0);
//! b.add_edge(a, c, 1.0).unwrap();
//! b.add_edge(a, d, 2.0).unwrap();
//! let dag = b.build().unwrap();
//!
//! assert_eq!(dag.num_tasks(), 3);
//! assert_eq!(dag.successors(a).count(), 2);
//! assert!(dag.entry_tasks().eq([a]));
//! ```
//!
//! ## Module map
//!
//! * [`graph`] — the [`Dag`] type and its read API.
//! * [`builder`] — [`DagBuilder`] incremental construction with validation.
//! * [`topo`] — topological orders and layering.
//! * [`analysis`] — levels, critical paths, closures, structural statistics.
//! * [`dot`] — Graphviz DOT export for debugging and papers.
//! * [`io`] — portable JSON-friendly graph interchange ([`io::DagSpec`]).
//! * [`stg`] — Kasahara Standard Task Graph text format reader/writer.
//! * [`fingerprint`] — stable streaming content hashing ([`Fingerprint`])
//!   used for cross-process memoization keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod dot;
mod error;
pub mod fingerprint;
pub mod graph;
mod id;
pub mod io;
pub mod stg;
pub mod topo;

pub use builder::DagBuilder;
pub use error::DagError;
pub use fingerprint::Fingerprint;
pub use graph::{Dag, Edge};
pub use id::TaskId;

#[cfg(test)]
mod proptests;
