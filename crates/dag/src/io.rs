//! User-facing task-graph interchange format.
//!
//! [`DagSpec`] is a plain, human-writable description — a list of task
//! weights plus an edge list — that serializes to/from JSON (or any serde
//! format) without exposing the internal CSR layout, and validates through
//! the normal [`DagBuilder`] pipeline on load.
//!
//! ```json
//! {
//!   "tasks": [ {"weight": 4.0}, {"weight": 6.0} ],
//!   "edges": [ {"src": 0, "dst": 1, "data": 5.0} ]
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::builder::DagBuilder;
use crate::{Dag, DagError, TaskId};

/// One task in a [`DagSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Computation weight (work units).
    pub weight: f64,
    /// Optional human label (ignored by the scheduler, preserved on save).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
}

/// One edge in a [`DagSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Producing task index.
    pub src: u32,
    /// Consuming task index.
    pub dst: u32,
    /// Data volume transferred.
    pub data: f64,
}

/// Portable task-graph description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DagSpec {
    /// Tasks, indexed by position.
    pub tasks: Vec<TaskSpec>,
    /// Dependency edges.
    #[serde(default)]
    pub edges: Vec<EdgeSpec>,
}

impl DagSpec {
    /// Capture an existing graph as a spec.
    pub fn from_dag(dag: &Dag) -> Self {
        DagSpec {
            tasks: dag
                .task_ids()
                .map(|t| TaskSpec {
                    weight: dag.task_weight(t),
                    label: None,
                })
                .collect(),
            edges: dag
                .edges()
                .iter()
                .map(|e| EdgeSpec {
                    src: e.src.0,
                    dst: e.dst.0,
                    data: e.data,
                })
                .collect(),
        }
    }

    /// Build (and fully validate) the graph this spec describes.
    ///
    /// # Errors
    /// Any [`DagError`] the builder reports: unknown endpoints, self loops,
    /// duplicate edges, cycles, bad weights, empty graphs.
    pub fn build(&self) -> Result<Dag, DagError> {
        let mut b = DagBuilder::with_capacity(self.tasks.len(), self.edges.len());
        for t in &self.tasks {
            b.add_task(t.weight);
        }
        for e in &self.edges {
            b.add_edge(TaskId(e.src), TaskId(e.dst), e.data)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    #[test]
    fn round_trips_through_spec() {
        let dag = dag_from_edges(&[1.0, 2.0, 3.0], &[(0, 1, 4.0), (0, 2, 5.0)]).unwrap();
        let spec = DagSpec::from_dag(&dag);
        let back = spec.build().unwrap();
        assert_eq!(back.num_tasks(), 3);
        assert_eq!(back.num_edges(), 2);
        assert_eq!(back.task_weight(TaskId(1)), 2.0);
        assert_eq!(back.edge_data(TaskId(0), TaskId(2)), Some(5.0));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let spec = DagSpec {
            tasks: vec![TaskSpec {
                weight: 1.0,
                label: None,
            }],
            edges: vec![EdgeSpec {
                src: 0,
                dst: 5,
                data: 1.0,
            }],
        };
        assert!(matches!(spec.build(), Err(DagError::UnknownTask(_))));

        let cyclic = DagSpec {
            tasks: vec![
                TaskSpec {
                    weight: 1.0,
                    label: None,
                },
                TaskSpec {
                    weight: 1.0,
                    label: None,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: 0,
                    dst: 1,
                    data: 0.0,
                },
                EdgeSpec {
                    src: 1,
                    dst: 0,
                    data: 0.0,
                },
            ],
        };
        assert!(matches!(cyclic.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn default_spec_is_empty_and_rejected() {
        assert!(matches!(DagSpec::default().build(), Err(DagError::Empty)));
    }
}
