use crate::TaskId;

/// Errors reported while constructing or transforming a task graph.
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// An edge endpoint referred to a task id that was never added.
    UnknownTask(TaskId),
    /// An edge from a task to itself was requested.
    SelfLoop(TaskId),
    /// The same (src, dst) edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The edge set contains a directed cycle; the offending task is one
    /// member of the cycle.
    Cycle(TaskId),
    /// A task weight or edge data volume was negative, NaN, or infinite.
    InvalidWeight {
        /// Human-readable description of which quantity was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The graph has no tasks at all.
    Empty,
}

impl core::fmt::Display for DagError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DagError::UnknownTask(t) => write!(f, "unknown task {t}"),
            DagError::SelfLoop(t) => write!(f, "self loop on task {t}"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge {u} -> {v}"),
            DagError::Cycle(t) => write!(f, "directed cycle through task {t}"),
            DagError::InvalidWeight { what, value } => {
                write!(f, "invalid {what}: {value} (must be finite and >= 0)")
            }
            DagError::Empty => write!(f, "graph has no tasks"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DagError::DuplicateEdge(TaskId(1), TaskId(2));
        assert_eq!(e.to_string(), "duplicate edge t1 -> t2");
        let e = DagError::InvalidWeight {
            what: "task weight",
            value: -1.0,
        };
        assert!(e.to_string().contains("task weight"));
        assert!(DagError::Empty.to_string().contains("no tasks"));
    }
}
