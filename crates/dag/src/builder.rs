//! Incremental, validating construction of [`Dag`] values.

use crate::graph::{Dag, Edge};
use crate::{DagError, TaskId};

/// Builder for [`Dag`].
///
/// Tasks get dense ids in insertion order. Edges may be added in any order;
/// all validation (unknown endpoints and non-finite weights immediately;
/// duplicates and cycles at [`DagBuilder::build`]) funnels into
/// [`DagError`].
///
/// ```
/// use hetsched_dag::DagBuilder;
/// let mut b = DagBuilder::new();
/// let u = b.add_task(1.0);
/// let v = b.add_task(1.0);
/// b.add_edge(u, v, 0.5).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.num_edges(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    weights: Vec<f64>,
    edges: Vec<Edge>,
}

impl DagBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// New builder with capacity reserved for `tasks` tasks and `edges`
    /// edges (avoids reallocation for generator-driven construction).
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        DagBuilder {
            weights: Vec::with_capacity(tasks),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of tasks added so far.
    pub fn num_tasks(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a task with computation weight `weight` (work units); returns its id.
    ///
    /// Non-finite or negative weights are accepted here and rejected by
    /// [`DagBuilder::build`], so generators can fill weights in bulk and get
    /// a single error path.
    pub fn add_task(&mut self, weight: f64) -> TaskId {
        let id = TaskId::from_index(self.weights.len());
        self.weights.push(weight);
        id
    }

    /// Add `n` tasks all with weight `weight`; returns the id of the first.
    pub fn add_tasks(&mut self, n: usize, weight: f64) -> TaskId {
        let first = TaskId::from_index(self.weights.len());
        self.weights.extend(std::iter::repeat_n(weight, n));
        first
    }

    /// Overwrite the weight of an existing task.
    ///
    /// # Errors
    /// [`DagError::UnknownTask`] if `t` was never added.
    pub fn set_weight(&mut self, t: TaskId, weight: f64) -> Result<(), DagError> {
        let w = self
            .weights
            .get_mut(t.index())
            .ok_or(DagError::UnknownTask(t))?;
        *w = weight;
        Ok(())
    }

    /// Add a dependency edge `src -> dst` carrying `data` volume.
    ///
    /// # Errors
    /// * [`DagError::UnknownTask`] if either endpoint was never added.
    /// * [`DagError::SelfLoop`] if `src == dst`.
    ///
    /// Duplicate edges and cycles are detected at [`DagBuilder::build`].
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, data: f64) -> Result<(), DagError> {
        let n = self.weights.len();
        if src.index() >= n {
            return Err(DagError::UnknownTask(src));
        }
        if dst.index() >= n {
            return Err(DagError::UnknownTask(dst));
        }
        if src == dst {
            return Err(DagError::SelfLoop(src));
        }
        self.edges.push(Edge { src, dst, data });
        Ok(())
    }

    /// Finish construction: validate weights, edges, and acyclicity, and
    /// build the CSR indexes and topological order.
    ///
    /// # Errors
    /// * [`DagError::Empty`] if no tasks were added.
    /// * [`DagError::InvalidWeight`] for non-finite/negative task weights or
    ///   edge data volumes.
    /// * [`DagError::DuplicateEdge`] if the same `(src, dst)` pair appears
    ///   more than once.
    /// * [`DagError::Cycle`] if the edges form a directed cycle.
    pub fn build(self) -> Result<Dag, DagError> {
        let DagBuilder { weights, mut edges } = self;
        let n = weights.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(DagError::InvalidWeight {
                    what: "task weight",
                    value: w,
                });
            }
        }
        for e in &edges {
            if !e.data.is_finite() || e.data < 0.0 {
                return Err(DagError::InvalidWeight {
                    what: "edge data volume",
                    value: e.data,
                });
            }
        }

        edges.sort_by_key(|e| (e.src, e.dst));
        for w in edges.windows(2) {
            if w[0].src == w[1].src && w[0].dst == w[1].dst {
                return Err(DagError::DuplicateEdge(w[0].src, w[0].dst));
            }
        }

        // Successor CSR: edges are sorted by src, so offsets are a prefix count.
        let mut succ_off = vec![0u32; n + 1];
        for e in &edges {
            succ_off[e.src.index() + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }

        // Predecessor CSR: bucket edge indices by destination.
        let mut pred_off = vec![0u32; n + 1];
        for e in &edges {
            pred_off[e.dst.index() + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut cursor = pred_off.clone();
        let mut pred_edges = vec![0u32; edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let c = &mut cursor[e.dst.index()];
            pred_edges[*c as usize] = i as u32;
            *c += 1;
        }
        // Within each destination bucket, edge indices are ascending (edges
        // are scanned in sorted order), so predecessors come out in id order.

        // Kahn's algorithm with a smallest-id-first frontier for a
        // deterministic topological order; detects cycles.
        let mut indeg: Vec<u32> = (0..n).map(|i| pred_off[i + 1] - pred_off[i]).collect();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = heap.pop() {
            let u = TaskId(u);
            topo.push(u);
            let lo = succ_off[u.index()] as usize;
            let hi = succ_off[u.index() + 1] as usize;
            for e in &edges[lo..hi] {
                let d = &mut indeg[e.dst.index()];
                *d -= 1;
                if *d == 0 {
                    heap.push(std::cmp::Reverse(e.dst.0));
                }
            }
        }
        if topo.len() != n {
            // Some task still has positive in-degree: it is on or behind a cycle.
            let t = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(TaskId::from_index)
                .expect("cycle implies a task with residual in-degree");
            return Err(DagError::Cycle(t));
        }

        let entries = (0..n)
            .filter(|&i| pred_off[i + 1] == pred_off[i])
            .map(TaskId::from_index)
            .collect();
        let exits = (0..n)
            .filter(|&i| succ_off[i + 1] == succ_off[i])
            .map(TaskId::from_index)
            .collect();

        Ok(Dag {
            weights,
            edges,
            succ_off,
            pred_off,
            pred_edges,
            topo,
            entries,
            exits,
        })
    }
}

/// Convenience constructor: build a DAG from per-task weights and an edge
/// list in one call.
///
/// # Errors
/// Same failure modes as [`DagBuilder::build`] plus endpoint validation.
pub fn dag_from_edges(weights: &[f64], edges: &[(u32, u32, f64)]) -> Result<Dag, DagError> {
    let mut b = DagBuilder::with_capacity(weights.len(), edges.len());
    for &w in weights {
        b.add_task(w);
    }
    for &(u, v, d) in edges {
        b.add_edge(TaskId(u), TaskId(v), d)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn rejects_unknown_endpoints() {
        let mut b = DagBuilder::new();
        let t = b.add_task(1.0);
        assert_eq!(
            b.add_edge(t, TaskId(9), 1.0).unwrap_err(),
            DagError::UnknownTask(TaskId(9))
        );
        assert_eq!(
            b.add_edge(TaskId(9), t, 1.0).unwrap_err(),
            DagError::UnknownTask(TaskId(9))
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::new();
        let t = b.add_task(1.0);
        assert_eq!(b.add_edge(t, t, 1.0).unwrap_err(), DagError::SelfLoop(t));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DagBuilder::new();
        let u = b.add_task(1.0);
        let v = b.add_task(1.0);
        b.add_edge(u, v, 1.0).unwrap();
        b.add_edge(u, v, 2.0).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::DuplicateEdge(u, v));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let u = b.add_task(1.0);
        let v = b.add_task(1.0);
        let w = b.add_task(1.0);
        b.add_edge(u, v, 1.0).unwrap();
        b.add_edge(v, w, 1.0).unwrap();
        b.add_edge(w, u, 1.0).unwrap();
        assert!(matches!(b.build().unwrap_err(), DagError::Cycle(_)));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = DagBuilder::new();
        b.add_task(f64::NAN);
        assert!(matches!(
            b.build().unwrap_err(),
            DagError::InvalidWeight {
                what: "task weight",
                ..
            }
        ));

        let mut b = DagBuilder::new();
        let u = b.add_task(1.0);
        let v = b.add_task(1.0);
        b.add_edge(u, v, -3.0).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            DagError::InvalidWeight {
                what: "edge data volume",
                ..
            }
        ));
    }

    #[test]
    fn set_weight_works_and_validates() {
        let mut b = DagBuilder::new();
        let t = b.add_task(1.0);
        b.set_weight(t, 7.0).unwrap();
        assert_eq!(
            b.set_weight(TaskId(3), 1.0).unwrap_err(),
            DagError::UnknownTask(TaskId(3))
        );
        let g = b.build().unwrap();
        assert_eq!(g.task_weight(t), 7.0);
    }

    #[test]
    fn add_tasks_bulk() {
        let mut b = DagBuilder::new();
        let first = b.add_tasks(5, 2.0);
        assert_eq!(first, TaskId(0));
        assert_eq!(b.num_tasks(), 5);
        let g = b.build().unwrap();
        assert_eq!(g.total_weight(), 10.0);
    }

    #[test]
    fn dag_from_edges_convenience() {
        let g = dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 5.0), (1, 2, 6.0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_data(TaskId(1), TaskId(2)), Some(6.0));
    }

    #[test]
    fn topo_is_deterministic_regardless_of_edge_insertion_order() {
        let g1 = dag_from_edges(
            &[1.0; 4],
            &[(0, 2, 1.0), (0, 1, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        let g2 = dag_from_edges(
            &[1.0; 4],
            &[(2, 3, 1.0), (1, 3, 1.0), (0, 1, 1.0), (0, 2, 1.0)],
        )
        .unwrap();
        assert_eq!(g1.topo_order(), g2.topo_order());
    }

    #[test]
    fn disconnected_components_are_allowed() {
        let g = dag_from_edges(&[1.0, 1.0, 1.0, 1.0], &[(0, 1, 1.0)]).unwrap();
        assert_eq!(g.entry_tasks().count(), 3);
        assert_eq!(g.exit_tasks().count(), 3);
    }
}
