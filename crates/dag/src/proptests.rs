//! Property-based tests over randomly generated DAGs.
//!
//! The generator only ever creates forward edges (`i -> j` with `i < j`),
//! which guarantees acyclicity by construction, so `build()` must succeed
//! and every structural invariant must hold on the result.

use proptest::prelude::*;

use crate::analysis::{
    bottom_levels, critical_path, critical_path_compute_only, top_levels, transitive_reduction,
    Reachability,
};
use crate::builder::dag_from_edges;
use crate::topo::{alap_levels, asap_levels, is_topological};
use crate::{Dag, TaskId};

/// Strategy: an arbitrary forward-edged DAG with 1..=n_max tasks.
fn arb_dag(n_max: usize) -> impl Strategy<Value = Dag> {
    (1..=n_max).prop_flat_map(|n| {
        let weights = proptest::collection::vec(0.0f64..100.0, n);
        // candidate forward edges as a subset of all (i, j), i < j
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let edges = proptest::sample::subsequence(pairs.clone(), 0..=pairs.len().min(4 * n));
        let datas = proptest::collection::vec(0.0f64..100.0, 4 * n + 1);
        (weights, edges, datas).prop_map(|(w, es, ds)| {
            let edges: Vec<(u32, u32, f64)> = es
                .into_iter()
                .enumerate()
                .map(|(k, (u, v))| (u, v, ds[k % ds.len()]))
                .collect();
            dag_from_edges(&w, &edges).expect("forward edges are acyclic")
        })
    })
}

/// Slow reference reachability by DFS.
fn dfs_reaches(dag: &Dag, u: TaskId, v: TaskId) -> bool {
    let mut seen = vec![false; dag.num_tasks()];
    let mut stack = vec![u];
    while let Some(t) = stack.pop() {
        for (s, _) in dag.successors(t) {
            if s == v {
                return true;
            }
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn build_topo_order_is_topological(dag in arb_dag(30)) {
        prop_assert!(is_topological(&dag, dag.topo_order()));
    }

    #[test]
    fn degree_sums_match_edge_count(dag in arb_dag(30)) {
        let out: usize = dag.task_ids().map(|t| dag.out_degree(t)).sum();
        let inn: usize = dag.task_ids().map(|t| dag.in_degree(t)).sum();
        prop_assert_eq!(out, dag.num_edges());
        prop_assert_eq!(inn, dag.num_edges());
    }

    #[test]
    fn successor_and_predecessor_views_agree(dag in arb_dag(25)) {
        for t in dag.task_ids() {
            for (s, d) in dag.successors(t) {
                prop_assert_eq!(dag.edge_data(t, s), Some(d));
                prop_assert!(dag.predecessors(s).any(|(p, pd)| p == t && pd == d));
            }
        }
    }

    #[test]
    fn levels_strictly_increase_along_edges(dag in arb_dag(30)) {
        let asap = asap_levels(&dag);
        let alap = alap_levels(&dag);
        for e in dag.edges() {
            prop_assert!(asap[e.src.index()] < asap[e.dst.index()]);
            prop_assert!(alap[e.src.index()] < alap[e.dst.index()]);
            // ALAP never schedules earlier than ASAP
        }
        for t in dag.task_ids() {
            prop_assert!(asap[t.index()] <= alap[t.index()]);
        }
    }

    #[test]
    fn weighted_levels_are_consistent(dag in arb_dag(25)) {
        let tl = top_levels(&dag);
        let bl = bottom_levels(&dag);
        let (cp, path) = critical_path(&dag);
        // every task: tl + bl <= cp, with equality on the critical path
        for t in dag.task_ids() {
            prop_assert!(tl[t.index()] + bl[t.index()] <= cp + 1e-9);
        }
        for &t in &path {
            prop_assert!((tl[t.index()] + bl[t.index()] - cp).abs() < 1e-9);
        }
        // the path is a real path
        for w in path.windows(2) {
            prop_assert!(dag.has_edge(w[0], w[1]));
        }
        // compute-only CP is never longer than the full CP
        prop_assert!(critical_path_compute_only(&dag) <= cp + 1e-9);
    }

    #[test]
    fn reachability_matches_dfs(dag in arb_dag(20)) {
        let r = Reachability::new(&dag);
        for u in dag.task_ids() {
            for v in dag.task_ids() {
                prop_assert_eq!(
                    r.reaches(u, v),
                    dfs_reaches(&dag, u, v),
                    "u={} v={}", u, v
                );
            }
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability_and_is_minimal(dag in arb_dag(18)) {
        let red = transitive_reduction(&dag);
        prop_assert!(red.num_edges() <= dag.num_edges());
        let r_full = Reachability::new(&dag);
        let r_red = Reachability::new(&red);
        for u in dag.task_ids() {
            for v in dag.task_ids() {
                prop_assert_eq!(r_full.reaches(u, v), r_red.reaches(u, v));
            }
        }
        // minimality: removing any surviving edge changes reachability
        for e in red.edges() {
            let without: Vec<(u32, u32, f64)> = red
                .edges()
                .iter()
                .filter(|f| !(f.src == e.src && f.dst == e.dst))
                .map(|f| (f.src.0, f.dst.0, f.data))
                .collect();
            let weights: Vec<f64> = red.task_ids().map(|t| red.task_weight(t)).collect();
            let g2 = dag_from_edges(&weights, &without).unwrap();
            prop_assert!(!dfs_reaches(&g2, e.src, e.dst));
        }
    }

    #[test]
    fn virtual_entry_exit_always_single(dag in arb_dag(25)) {
        let (g2, en, ex) = crate::analysis::with_virtual_entry_exit(&dag);
        prop_assert_eq!(g2.entry_tasks().collect::<Vec<_>>(), vec![en]);
        prop_assert_eq!(g2.exit_tasks().collect::<Vec<_>>(), vec![ex]);
        prop_assert!((critical_path(&g2).0 - critical_path(&dag).0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// STG export/import round-trips structure and weights for any DAG.
    #[test]
    fn stg_round_trip(dag in arb_dag(25)) {
        let text = crate::stg::to_stg(&dag);
        let back = crate::stg::parse_stg(&text, 1.0).expect("own export parses");
        prop_assert_eq!(back.num_tasks(), dag.num_tasks());
        prop_assert_eq!(back.num_edges(), dag.num_edges());
        for t in dag.task_ids() {
            prop_assert_eq!(back.task_weight(t), dag.task_weight(t));
            let mut a: Vec<_> = dag.predecessors(t).map(|(p, _)| p).collect();
            let mut b: Vec<_> = back.predecessors(t).map(|(p, _)| p).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
