//! Structural analyses over task graphs: weighted levels, critical paths,
//! reachability, transitive reduction, and virtual entry/exit augmentation.
//!
//! All analyses here work on the *abstract* weights stored in the DAG (work
//! units and data volumes). Platform-aware variants (e.g. upward rank with
//! mean execution costs over a heterogeneous ETC matrix) live in
//! `hetsched-core`, because they depend on the platform model.

use crate::builder::DagBuilder;
use crate::{Dag, TaskId};

/// Weighted top level of every task: the longest path length from an entry
/// to `t`, *excluding* `t`'s own weight and counting every edge at full
/// data volume (unit bandwidth). Entries have top level 0.
pub fn top_levels(dag: &Dag) -> Vec<f64> {
    let mut tl = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order() {
        let mut best = 0.0f64;
        for (p, data) in dag.predecessors(t) {
            let cand = tl[p.index()] + dag.task_weight(p) + data;
            if cand > best {
                best = cand;
            }
        }
        tl[t.index()] = best;
    }
    tl
}

/// Weighted bottom level of every task: the longest path length from `t` to
/// an exit, *including* `t`'s own weight and counting every edge at full
/// data volume. For an exit task this is its own weight.
pub fn bottom_levels(dag: &Dag) -> Vec<f64> {
    let mut bl = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        let mut best = 0.0f64;
        for (s, data) in dag.successors(t) {
            let cand = data + bl[s.index()];
            if cand > best {
                best = cand;
            }
        }
        bl[t.index()] = dag.task_weight(t) + best;
    }
    bl
}

/// The critical path of the DAG under unit-speed/unit-bandwidth semantics:
/// the heaviest entry-to-exit path counting task weights and edge data.
///
/// Returns the path length and the tasks along it, entry first. For a
/// single-task graph the path is that task alone.
pub fn critical_path(dag: &Dag) -> (f64, Vec<TaskId>) {
    let bl = bottom_levels(dag);
    let mut cur = dag
        .entry_tasks()
        .max_by(|&a, &b| bl[a.index()].total_cmp(&bl[b.index()]))
        .expect("a valid DAG has at least one entry");
    let len = bl[cur.index()];
    let mut path = vec![cur];
    loop {
        // Follow the successor whose (edge + bottom level) realizes the max.
        let next = dag
            .successors(cur)
            .max_by(|&(s1, d1), &(s2, d2)| (d1 + bl[s1.index()]).total_cmp(&(d2 + bl[s2.index()])))
            .map(|(s, _)| s);
        match next {
            Some(s) => {
                path.push(s);
                cur = s;
            }
            None => break,
        }
    }
    (len, path)
}

/// Length of the critical path counting **task weights only** (edges free).
/// This is the classic lower bound used to normalize schedule lengths on
/// homogeneous platforms.
pub fn critical_path_compute_only(dag: &Dag) -> f64 {
    let mut bl = vec![0.0f64; dag.num_tasks()];
    for &t in dag.topo_order().iter().rev() {
        let best = dag
            .successors(t)
            .map(|(s, _)| bl[s.index()])
            .fold(0.0f64, f64::max);
        bl[t.index()] = dag.task_weight(t) + best;
    }
    dag.task_ids().map(|t| bl[t.index()]).fold(0.0f64, f64::max)
}

/// Dense reachability (transitive closure) of a DAG, one bitset row per
/// task. Memory is `n²/8` bytes — fine for the ≤ ~10⁴-task graphs of the
/// scheduling literature.
pub struct Reachability {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Compute reachability for `dag`. `O(n·m/64)` via bitset unions in
    /// reverse topological order.
    pub fn new(dag: &Dag) -> Self {
        let n = dag.num_tasks();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for &t in dag.topo_order().iter().rev() {
            let ti = t.index();
            // set self-unreachable; reaches(u, u) is false by convention
            for (s, _) in dag.successors(t) {
                let si = s.index();
                // row(t) |= row(s); then set bit s.
                let (row_t, row_s) = if ti < si {
                    let (a, b) = bits.split_at_mut(si * words_per_row);
                    (
                        &mut a[ti * words_per_row..(ti + 1) * words_per_row],
                        &b[..words_per_row],
                    )
                } else {
                    let (a, b) = bits.split_at_mut(ti * words_per_row);
                    (
                        &mut b[..words_per_row],
                        &a[si * words_per_row..(si + 1) * words_per_row],
                    )
                };
                for (w_t, w_s) in row_t.iter_mut().zip(row_s.iter()) {
                    *w_t |= *w_s;
                }
                bits[ti * words_per_row + si / 64] |= 1u64 << (si % 64);
            }
        }
        Reachability {
            n,
            words_per_row,
            bits,
        }
    }

    /// Whether there is a directed path of length ≥ 1 from `u` to `v`.
    #[inline]
    pub fn reaches(&self, u: TaskId, v: TaskId) -> bool {
        debug_assert!(u.index() < self.n && v.index() < self.n);
        let w = self.bits[u.index() * self.words_per_row + v.index() / 64];
        (w >> (v.index() % 64)) & 1 == 1
    }

    /// Whether `u` and `v` are independent (neither reaches the other and
    /// they are distinct) — i.e. they may run concurrently.
    pub fn independent(&self, u: TaskId, v: TaskId) -> bool {
        u != v && !self.reaches(u, v) && !self.reaches(v, u)
    }

    /// All descendants of `u` in id order.
    pub fn descendants(&self, u: TaskId) -> Vec<TaskId> {
        (0..self.n as u32)
            .map(TaskId)
            .filter(|&v| self.reaches(u, v))
            .collect()
    }

    /// All ancestors of `v` in id order.
    pub fn ancestors(&self, v: TaskId) -> Vec<TaskId> {
        (0..self.n as u32)
            .map(TaskId)
            .filter(|&u| self.reaches(u, v))
            .collect()
    }
}

/// Transitive reduction: the unique minimal sub-DAG with the same
/// reachability. Edge `(u, v)` is redundant iff some successor `s ≠ v` of
/// `u` reaches `v`. Task weights and surviving edge data are preserved.
pub fn transitive_reduction(dag: &Dag) -> Dag {
    let reach = Reachability::new(dag);
    let mut b = DagBuilder::with_capacity(dag.num_tasks(), dag.num_edges());
    for t in dag.task_ids() {
        b.add_task(dag.task_weight(t));
    }
    for e in dag.edges() {
        let redundant = dag
            .successors(e.src)
            .any(|(s, _)| s != e.dst && reach.reaches(s, e.dst));
        if !redundant {
            b.add_edge(e.src, e.dst, e.data)
                .expect("endpoints exist by construction");
        }
    }
    b.build().expect("reduction of a valid DAG is valid")
}

/// Augment a DAG with a zero-weight virtual entry and exit so it has exactly
/// one of each (some classic heuristics assume this). Edges to/from the
/// virtual tasks carry zero data, so schedule lengths are unchanged.
///
/// Returns the new DAG plus the ids of the (possibly pre-existing) unique
/// entry and exit tasks. Original task ids are preserved.
pub fn with_virtual_entry_exit(dag: &Dag) -> (Dag, TaskId, TaskId) {
    let entries: Vec<TaskId> = dag.entry_tasks().collect();
    let exits: Vec<TaskId> = dag.exit_tasks().collect();
    if entries.len() == 1 && exits.len() == 1 {
        return (dag.clone(), entries[0], exits[0]);
    }
    let mut b = DagBuilder::with_capacity(
        dag.num_tasks() + 2,
        dag.num_edges() + entries.len() + exits.len(),
    );
    for t in dag.task_ids() {
        b.add_task(dag.task_weight(t));
    }
    for e in dag.edges() {
        b.add_edge(e.src, e.dst, e.data).expect("valid copy");
    }
    let entry = if entries.len() == 1 {
        entries[0]
    } else {
        let v = b.add_task(0.0);
        for &e in &entries {
            b.add_edge(v, e, 0.0).expect("virtual entry edge");
        }
        v
    };
    let exit = if exits.len() == 1 {
        exits[0]
    } else {
        let v = b.add_task(0.0);
        for &x in &exits {
            b.add_edge(x, v, 0.0).expect("virtual exit edge");
        }
        v
    };
    (b.build().expect("augmented DAG is valid"), entry, exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn diamond() -> Dag {
        // weights 1,2,3,4; edges carry data 10,20,30,40
        dag_from_edges(
            &[1.0, 2.0, 3.0, 4.0],
            &[(0, 1, 10.0), (0, 2, 20.0), (1, 3, 30.0), (2, 3, 40.0)],
        )
        .unwrap()
    }

    #[test]
    fn top_and_bottom_levels() {
        let g = diamond();
        // top: t0=0; t1=1+10=11; t2=1+20=21; t3=max(11+2+30, 21+3+40)=64
        assert_eq!(top_levels(&g), vec![0.0, 11.0, 21.0, 64.0]);
        // bottom: t3=4; t1=2+30+4=36; t2=3+40+4=47; t0=1+max(10+36,20+47)=68
        assert_eq!(bottom_levels(&g), vec![68.0, 36.0, 47.0, 4.0]);
    }

    #[test]
    fn critical_path_follows_heavy_branch() {
        let g = diamond();
        let (len, path) = critical_path(&g);
        assert_eq!(len, 68.0);
        assert_eq!(path, vec![TaskId(0), TaskId(2), TaskId(3)]);
    }

    #[test]
    fn critical_path_single_task() {
        let g = dag_from_edges(&[5.0], &[]).unwrap();
        let (len, path) = critical_path(&g);
        assert_eq!(len, 5.0);
        assert_eq!(path, vec![TaskId(0)]);
        assert_eq!(critical_path_compute_only(&g), 5.0);
    }

    #[test]
    fn compute_only_cp_ignores_edges() {
        let g = diamond();
        // heaviest compute chain: 1 + 3 + 4 = 8
        assert_eq!(critical_path_compute_only(&g), 8.0);
    }

    #[test]
    fn reachability_queries() {
        let g = diamond();
        let r = Reachability::new(&g);
        assert!(r.reaches(TaskId(0), TaskId(3)));
        assert!(r.reaches(TaskId(0), TaskId(1)));
        assert!(!r.reaches(TaskId(3), TaskId(0)));
        assert!(!r.reaches(TaskId(1), TaskId(2)));
        assert!(!r.reaches(TaskId(0), TaskId(0)), "self-reach is false");
        assert!(r.independent(TaskId(1), TaskId(2)));
        assert!(!r.independent(TaskId(0), TaskId(3)));
        assert_eq!(
            r.descendants(TaskId(0)),
            vec![TaskId(1), TaskId(2), TaskId(3)]
        );
        assert_eq!(
            r.ancestors(TaskId(3)),
            vec![TaskId(0), TaskId(1), TaskId(2)]
        );
    }

    #[test]
    fn reachability_on_wide_graph_crosses_word_boundaries() {
        // star: task 0 feeds tasks 1..=100 (forces multi-word rows)
        let n = 101u32;
        let weights = vec![1.0; n as usize];
        let edges: Vec<(u32, u32, f64)> = (1..n).map(|i| (0, i, 1.0)).collect();
        let g = dag_from_edges(&weights, &edges).unwrap();
        let r = Reachability::new(&g);
        for i in 1..n {
            assert!(r.reaches(TaskId(0), TaskId(i)));
            assert!(!r.reaches(TaskId(i), TaskId(0)));
        }
        assert_eq!(r.descendants(TaskId(0)).len(), 100);
    }

    #[test]
    fn transitive_reduction_removes_shortcut() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2
        let g = dag_from_edges(&[1.0; 3], &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 9.0)]).unwrap();
        let red = transitive_reduction(&g);
        assert_eq!(red.num_edges(), 2);
        assert!(!red.has_edge(TaskId(0), TaskId(2)));
        // reachability preserved
        let r = Reachability::new(&red);
        assert!(r.reaches(TaskId(0), TaskId(2)));
    }

    #[test]
    fn transitive_reduction_keeps_diamond() {
        let g = diamond();
        let red = transitive_reduction(&g);
        assert_eq!(red.num_edges(), 4, "no diamond edge is redundant");
    }

    #[test]
    fn virtual_entry_exit_noop_when_single() {
        let g = diamond();
        let (g2, en, ex) = with_virtual_entry_exit(&g);
        assert_eq!(g2.num_tasks(), 4);
        assert_eq!(en, TaskId(0));
        assert_eq!(ex, TaskId(3));
    }

    #[test]
    fn virtual_entry_exit_added_when_multiple() {
        // two independent chains: 0->1, 2->3
        let g = dag_from_edges(&[1.0; 4], &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let (g2, en, ex) = with_virtual_entry_exit(&g);
        assert_eq!(g2.num_tasks(), 6);
        assert_eq!(g2.task_weight(en), 0.0);
        assert_eq!(g2.task_weight(ex), 0.0);
        assert_eq!(g2.entry_tasks().collect::<Vec<_>>(), vec![en]);
        assert_eq!(g2.exit_tasks().collect::<Vec<_>>(), vec![ex]);
        // schedule-length-relevant structure unchanged
        assert_eq!(critical_path(&g2).0, critical_path(&g).0);
    }
}
