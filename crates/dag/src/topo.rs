//! Topological layering utilities.
//!
//! The build-time topological order lives on [`Dag`] itself
//! ([`Dag::topo_order`]); this module adds hop-based layering (ASAP/ALAP
//! levels) used by homogeneous heuristics (MCP-style) and by the random-DAG
//! generator's shape statistics.

use crate::{Dag, TaskId};

/// ASAP level of every task: the length (in hops) of the longest path from
/// any entry task, so entries are level 0 and every edge goes to a strictly
/// higher level.
pub fn asap_levels(dag: &Dag) -> Vec<u32> {
    let mut level = vec![0u32; dag.num_tasks()];
    for &t in dag.topo_order() {
        let l = dag
            .predecessors(t)
            .map(|(p, _)| level[p.index()] + 1)
            .max()
            .unwrap_or(0);
        level[t.index()] = l;
    }
    level
}

/// ALAP level of every task: levels counted from the sinks, mirrored so the
/// deepest sink sits at `depth - 1` and every edge still goes to a strictly
/// higher level. A task's slack in hops is `alap - asap`.
pub fn alap_levels(dag: &Dag) -> Vec<u32> {
    let n = dag.num_tasks();
    let mut below = vec![0u32; n]; // longest hop distance to a sink
    for &t in dag.topo_order().iter().rev() {
        let l = dag
            .successors(t)
            .map(|(s, _)| below[s.index()] + 1)
            .max()
            .unwrap_or(0);
        below[t.index()] = l;
    }
    let depth = dag.task_ids().map(|t| below[t.index()]).max().unwrap_or(0);
    below.iter().map(|&b| depth - b).collect()
}

/// Group tasks by ASAP level; `layers[l]` holds the level-`l` tasks in id
/// order. The number of layers is the DAG's depth, the largest layer its
/// width.
pub fn layers(dag: &Dag) -> Vec<Vec<TaskId>> {
    let lv = asap_levels(dag);
    let depth = lv.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut out = vec![Vec::new(); depth];
    for t in dag.task_ids() {
        out[lv[t.index()] as usize].push(t);
    }
    out
}

/// Number of layers (longest path in hops, plus one).
pub fn depth(dag: &Dag) -> usize {
    asap_levels(dag).iter().copied().max().unwrap_or(0) as usize + 1
}

/// Maximum number of tasks on one ASAP level — the graph's parallelism width.
pub fn width(dag: &Dag) -> usize {
    layers(dag).iter().map(Vec::len).max().unwrap_or(0)
}

/// Whether `order` is a valid topological order of `dag` (each task exactly
/// once, every edge forward).
pub fn is_topological(dag: &Dag, order: &[TaskId]) -> bool {
    if order.len() != dag.num_tasks() {
        return false;
    }
    let mut pos = vec![usize::MAX; dag.num_tasks()];
    for (i, t) in order.iter().enumerate() {
        if t.index() >= dag.num_tasks() || pos[t.index()] != usize::MAX {
            return false;
        }
        pos[t.index()] = i;
    }
    dag.edges()
        .iter()
        .all(|e| pos[e.src.index()] < pos[e.dst.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    fn chain3() -> Dag {
        dag_from_edges(&[1.0, 1.0, 1.0], &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    fn diamond() -> Dag {
        dag_from_edges(
            &[1.0; 4],
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn chain_levels() {
        let g = chain3();
        assert_eq!(asap_levels(&g), vec![0, 1, 2]);
        assert_eq!(alap_levels(&g), vec![0, 1, 2]);
        assert_eq!(depth(&g), 3);
        assert_eq!(width(&g), 1);
    }

    #[test]
    fn diamond_levels_and_layers() {
        let g = diamond();
        assert_eq!(asap_levels(&g), vec![0, 1, 1, 2]);
        assert_eq!(depth(&g), 3);
        assert_eq!(width(&g), 2);
        let ls = layers(&g);
        assert_eq!(ls.len(), 3);
        assert_eq!(ls[1].len(), 2);
    }

    #[test]
    fn alap_exposes_slack() {
        // 0 -> 2, 1 -> 2, and 1 also has a long path 1 -> 3 -> 2? No:
        // build: 0->3, 1->2->3. Task 0 has slack 1.
        let g = dag_from_edges(&[1.0; 4], &[(0, 3, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let asap = asap_levels(&g);
        let alap = alap_levels(&g);
        assert_eq!(asap[0], 0);
        assert_eq!(alap[0], 1, "task 0 can be delayed one level");
        assert_eq!(alap[1], 0, "task 1 is on the critical chain");
    }

    #[test]
    fn is_topological_accepts_build_order_and_rejects_garbage() {
        let g = diamond();
        assert!(is_topological(&g, g.topo_order()));
        let mut rev: Vec<_> = g.topo_order().to_vec();
        rev.reverse();
        assert!(!is_topological(&g, &rev));
        assert!(!is_topological(&g, &g.topo_order()[1..]));
        let dup = vec![g.topo_order()[0]; g.num_tasks()];
        assert!(!is_topological(&g, &dup));
    }
}
