//! Graphviz DOT export for task graphs.

use std::fmt::Write as _;

use crate::Dag;

/// Render `dag` as a Graphviz `digraph` named `name`.
///
/// Nodes are labelled `t<i> (w)` with their computation weight, edges with
/// their data volume. Useful for debugging generators and for paper-style
/// figures (`dot -Tpdf`).
pub fn to_dot(dag: &Dag, name: &str) -> String {
    let mut s = String::with_capacity(64 + dag.num_tasks() * 32 + dag.num_edges() * 32);
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(s, "  node [shape=circle];");
    for t in dag.task_ids() {
        let _ = writeln!(
            s,
            "  {} [label=\"{} ({:.4})\"];",
            t.0,
            t,
            dag.task_weight(t)
        );
    }
    for e in dag.edges() {
        let _ = writeln!(s, "  {} -> {} [label=\"{:.4}\"];", e.src.0, e.dst.0, e.data);
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::dag_from_edges;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = dag_from_edges(&[1.0, 2.0], &[(0, 1, 3.5)]).unwrap();
        let dot = to_dot(&g, "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("0 [label=\"t0 (1.0000)\"];"));
        assert!(dot.contains("1 [label=\"t1 (2.0000)\"];"));
        assert!(dot.contains("0 -> 1 [label=\"3.5000\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_is_parseable_shape() {
        let g = dag_from_edges(&[1.0; 3], &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let dot = to_dot(&g, "chain");
        // one line per node and edge plus 4 lines of scaffolding
        assert_eq!(dot.lines().count(), 3 + 2 + 4);
    }
}
