//! `hetsched-cli` entry point: dispatches to the command implementations
//! in the library crate.

use std::process::ExitCode;

use hetsched_cli::args::Flags;
use hetsched_cli::{commands, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if flags.has("help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&flags),
        "schedule" => commands::schedule(&flags),
        "portfolio" => commands::portfolio(&flags),
        "explain" => commands::explain(&flags),
        "validate" => commands::validate_cmd(&flags),
        "simulate" => commands::simulate_cmd(&flags),
        "info" => commands::info(&flags),
        "convert" => commands::convert(&flags),
        "serve" => commands::serve(&flags),
        "gateway" => commands::gateway(&flags),
        "request" => commands::request(&flags),
        "algorithms" => Ok(commands::algorithms()),
        other => Err(format!("unknown command `{other}`").into()),
    };
    match result {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
