//! # hetsched-cli
//!
//! Library backing the `hetsched-cli` binary: flag parsing and the
//! command implementations (kept in a library so they are unit-testable
//! without spawning processes).
//!
//! ```text
//! hetsched-cli generate --kind gauss --m 8 --ccr 1.0 --out dag.json
//! hetsched-cli schedule --dag dag.json --system sys.json --alg ILS-D \
//!                       --gantt gantt.svg --out sched.json
//! hetsched-cli validate --dag dag.json --system sys.json --schedule sched.json
//! hetsched-cli simulate --dag dag.json --system sys.json --schedule sched.json \
//!                       --exec-cv 0.3 --draws 50
//! hetsched-cli info --dag dag.json
//! hetsched-cli algorithms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

/// Top-level CLI error: a message for the user plus a nonzero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError(s)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError(format!("JSON error: {e}"))
    }
}

/// Usage text shown by `--help` and on argument errors.
pub const USAGE: &str = "\
hetsched-cli — static task scheduling for heterogeneous/homogeneous systems

usage: hetsched-cli <command> [flags]

commands:
  generate    create a workload DAG and write it as JSON
              --kind <random|gauss|fft|laplace|cholesky|forkjoin|stencil|
                      irregular|out-tree|in-tree|divconq|sp>
              [--n N] [--m M] [--points P] [--grid G] [--tiles B]
              [--depth D] [--fanout F] [--sections S] [--width W]
              [--ccr X] [--alpha X] [--seed N] --out FILE
  schedule    schedule a DAG onto a system
              --dag FILE --system FILE --alg NAME
              [--out FILE] [--gantt FILE.svg] [--dot FILE.dot] [--quiet]
              [--jobs N]
  portfolio   run several algorithms in parallel over one shared problem
              instance; print the per-algorithm makespan table and keep
              the best schedule
              --dag FILE --system FILE [--algs A,B,C]
              [--out FILE] [--gantt FILE.svg] [--jobs N]
              (no --algs runs every registered algorithm)
  explain     trace a scheduling run: decision log, engine counters, and
              phase timings
              --dag FILE --system FILE --alg NAME
              [--format summary|ndjson|chrome-trace] [--out FILE] [--jobs N]
              --service --addr HOST:PORT [--out FILE]  (drain the span
               journals of a running gateway + its shards — or one plain
               shard — and merge them into one Chrome-trace timeline)
  validate    check a schedule against DAG + system
              --dag FILE --system FILE --schedule FILE
  simulate    replay a schedule in the discrete-event simulator
              --dag FILE --system FILE --schedule FILE
              [--exec-cv X] [--comm-spread X] [--draws N] [--seed N]
  info        print structural statistics of a DAG
              --dag FILE
  convert     convert between STG (.stg) and DagSpec JSON
              --from FILE --out FILE [--comm X]
  serve       run the resident scheduling daemon (NDJSON over TCP or stdin)
              [--addr HOST:PORT] [--stdin] [--workers N] [--queue N]
              [--cache N] [--instance-cache N] [--deadline-ms MS] [--jobs N]
              [--shards N]  (run N shard daemons behind an in-process
               gateway; clients talk to the gateway address)
  gateway     run the scale-out front door against running shard daemons:
              fingerprint routing, single-flight dedup, admission control
              --backends HOST:PORT,HOST:PORT [--addr HOST:PORT]
              [--inflight N] [--queue N] [--max-pending N] [--threads N]
              [--deadline-ms MS] [--connect-timeout-ms MS]
  request     send one request to a running daemon and print the reply
              --addr HOST:PORT
              [--op schedule|portfolio|patch|hello|stats|metrics|journal|
               shutdown]
              [--dag FILE --system FILE --alg NAME] [--algs A,B,C]
              [--parent HEX16 --deltas FILE|JSON]
              [--simulate] [--trace] [--deadline-ms MS] [--jobs N]
              [--timing] [--trace-id HEX16]
              (--op metrics prints the Prometheus text unwrapped;
               --op stats against a gateway prints an aligned per-shard
               table; --op journal drains the target's span journal;
               --op portfolio fans --algs out across the worker pool;
               --op patch reschedules a cached problem incrementally —
               --parent is the `problem` field of an earlier reply,
               --deltas a JSON array of problem deltas;
               --timing attaches a trace context so the reply carries a
               per-tier timing block, --trace-id pins the trace id)
  algorithms  list scheduler names usable with --alg

--jobs N sets the intra-algorithm search threads for GA, ILS-D, DUP-HEFT,
and BNB (schedules are bit-identical at any thread count). The
HETSCHED_JOBS environment variable is the fallback; the default is the
machine's available parallelism.";
