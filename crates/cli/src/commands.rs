//! Command implementations. Each returns the text it would print, so the
//! tests exercise commands without process spawning or stdout capture.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hetsched_core::{validate, Schedule};
use hetsched_dag::io::DagSpec;
use hetsched_dag::Dag;
use hetsched_metrics::gantt::{to_svg, GanttStyle};
use hetsched_metrics::{bounds, slr, speedup};
use hetsched_platform::{System, SystemSpec};
use hetsched_sim::{simulate, Noise, SimConfig};

use crate::args::{check_allowed, Flags};
use crate::CliError;

fn load_dag(path: &str) -> Result<Dag, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    let spec: DagSpec = serde_json::from_str(&text)?;
    spec.build()
        .map_err(|e| CliError(format!("invalid DAG in {path}: {e}")))
}

fn load_system(path: &str, dag: &Dag) -> Result<System, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    let spec: SystemSpec = serde_json::from_str(&text)?;
    spec.build(dag)
        .map_err(|e| CliError(format!("invalid system in {path}: {e}")))
}

fn load_schedule(path: &str) -> Result<Schedule, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("reading {path}: {e}")))?;
    Ok(serde_json::from_str(&text)?)
}

/// `generate` — build a workload and write its [`DagSpec`] JSON.
pub fn generate(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &[
            "kind",
            "n",
            "m",
            "points",
            "grid",
            "tiles",
            "depth",
            "fanout",
            "sections",
            "width",
            "ccr",
            "alpha",
            "seed",
            "out",
            "avg-comp",
            "series-prob",
        ],
    )?;
    let kind = flags.require("kind")?;
    let out = flags.require("out")?.to_string();
    let ccr: f64 = flags.get_or("ccr", 1.0)?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let avg: f64 = flags.get_or("avg-comp", 10.0)?;
    let mut rng = StdRng::seed_from_u64(seed);

    use hetsched_workloads as w;
    let dag = match kind {
        "random" => w::random_dag(
            &w::RandomDagParams {
                n: flags.get_or("n", 100)?,
                alpha: flags.get_or("alpha", 1.0)?,
                ccr,
                avg_comp: avg,
                ..Default::default()
            },
            &mut rng,
        ),
        "gauss" => w::gauss::gaussian_elimination(flags.get_or("m", 8)?, ccr, &mut rng),
        "fft" => w::fft::fft_butterfly(flags.get_or("points", 16)?, ccr, &mut rng),
        "laplace" => w::laplace::laplace_wavefront(flags.get_or("grid", 8)?, ccr, &mut rng),
        "cholesky" => w::cholesky::tiled_cholesky(flags.get_or("tiles", 5)?, ccr, &mut rng),
        "forkjoin" => w::forkjoin::fork_join(
            flags.get_or("sections", 3)?,
            flags.get_or("width", 8)?,
            avg,
            ccr,
            &mut rng,
        ),
        "stencil" => w::stencil::stencil_1d(
            flags.get_or("depth", 6)?,
            flags.get_or("width", 8)?,
            ccr,
            &mut rng,
        ),
        "irregular" => w::irregular::irregular41(ccr, &mut rng),
        "out-tree" => w::trees::out_tree(
            flags.get_or("depth", 4)?,
            flags.get_or("fanout", 2)?,
            avg,
            ccr,
            &mut rng,
        ),
        "in-tree" => w::trees::in_tree(
            flags.get_or("depth", 4)?,
            flags.get_or("fanout", 2)?,
            avg,
            ccr,
            &mut rng,
        ),
        "divconq" => w::trees::divide_and_conquer(
            flags.get_or("depth", 4)?,
            flags.get_or("fanout", 2)?,
            avg,
            ccr,
            &mut rng,
        ),
        "sp" => w::series_parallel::series_parallel(
            flags.get_or("n", 40)?,
            flags.get_or("series-prob", 0.5)?,
            avg,
            ccr,
            &mut rng,
        ),
        other => return Err(CliError(format!("unknown workload kind `{other}`"))),
    };
    let spec = DagSpec::from_dag(&dag);
    std::fs::write(&out, serde_json::to_string_pretty(&spec)?)?;
    Ok(format!(
        "wrote {out}: {} tasks, {} edges, CCR {:.3}\n",
        dag.num_tasks(),
        dag.num_edges(),
        dag.ccr()
    ))
}

/// Run `f` under the `--jobs` search-parallelism override when the flag
/// was given, otherwise directly (the `HETSCHED_JOBS` env fallback and the
/// machine default then apply, see [`hetsched_core::par::effective_jobs`]).
/// Schedules are bit-identical at any thread count, so `--jobs` changes
/// speed only, never output.
fn with_jobs_flag<R>(flags: &Flags, f: impl FnOnce() -> R) -> Result<R, CliError> {
    match flags.get("jobs") {
        Some(v) => {
            let j: usize = v
                .parse()
                .map_err(|e| CliError(format!("--jobs: invalid value `{v}` ({e})")))?;
            Ok(hetsched_core::par::with_jobs(j.max(1), f))
        }
        None => Ok(f()),
    }
}

/// `schedule` — run an algorithm and optionally export artifacts.
pub fn schedule(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &["dag", "system", "alg", "out", "gantt", "dot", "jobs"],
    )?;
    let dag = load_dag(flags.require("dag")?)?;
    let sys = load_system(flags.require("system")?, &dag)?;
    let alg_name = flags.require("alg")?;
    let alg = hetsched_core::algorithms::by_name(alg_name).ok_or_else(|| {
        CliError(format!(
            "unknown algorithm `{alg_name}`; run `hetsched-cli algorithms`"
        ))
    })?;
    let sched = with_jobs_flag(flags, || alg.schedule(&dag, &sys))?;
    validate(&dag, &sys, &sched)
        .map_err(|e| CliError(format!("internal error: invalid schedule: {e}")))?;

    let mut out = String::new();
    let m = sched.makespan();
    out.push_str(&format!(
        "{alg_name}: makespan {m:.4}, SLR {:.4}, speedup {:.3}, lower bound {:.4}, {} duplicates\n",
        slr(&dag, &sys, m),
        speedup(&dag, &sys, m),
        bounds::lower_bound(&dag, &sys),
        sched.num_duplicates(),
    ));
    if let Some(path) = flags.get("out") {
        std::fs::write(path, serde_json::to_string_pretty(&sched)?)?;
        out.push_str(&format!("wrote schedule to {path}\n"));
    }
    if let Some(path) = flags.get("gantt") {
        std::fs::write(path, to_svg(&sched, &GanttStyle::default()))?;
        out.push_str(&format!("wrote Gantt chart to {path}\n"));
    }
    if let Some(path) = flags.get("dot") {
        std::fs::write(path, hetsched_dag::dot::to_dot(&dag, "dag"))?;
        out.push_str(&format!("wrote DOT graph to {path}\n"));
    }
    Ok(out)
}

/// `portfolio` — run a set of algorithms in parallel against one shared
/// [`hetsched_core::ProblemInstance`] and report the per-algorithm
/// makespan table plus the winning schedule.
pub fn portfolio(flags: &Flags) -> Result<String, CliError> {
    check_allowed(flags, &["dag", "system", "algs", "out", "gantt", "jobs"])?;
    let dag = load_dag(flags.require("dag")?)?;
    let sys = load_system(flags.require("system")?, &dag)?;
    let names: Vec<String> = match flags.get("algs") {
        Some(s) => s
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect(),
        None => hetsched_core::algorithms::known_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    if names.is_empty() {
        return Err(CliError("--algs lists no algorithms".into()));
    }
    let mut algs = Vec::with_capacity(names.len());
    for name in &names {
        algs.push(hetsched_core::algorithms::by_name(name).ok_or_else(|| {
            CliError(format!(
                "unknown algorithm `{name}`; run `hetsched-cli algorithms`"
            ))
        })?);
    }
    let inst = hetsched_core::ProblemInstance::new(dag, sys);
    let refs: Vec<&(dyn hetsched_core::Scheduler + Send + Sync)> =
        algs.iter().map(|b| &**b).collect();
    let result = with_jobs_flag(flags, || hetsched_core::run_portfolio(&inst, &refs))?;
    let best = result.best_entry();
    validate(inst.dag(), inst.sys(), &best.schedule)
        .map_err(|e| CliError(format!("internal error: invalid schedule: {e}")))?;

    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "portfolio over {} algorithms ({} tasks x {} processors):",
        result.entries.len(),
        inst.dag().num_tasks(),
        inst.sys().num_procs()
    );
    for (i, entry) in result.entries.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<10} makespan {:>10.4}{}",
            entry.algorithm,
            entry.makespan,
            if i == result.best { "  <- best" } else { "" }
        );
    }
    let _ = writeln!(
        out,
        "best: {} with makespan {:.4}, SLR {:.4}, speedup {:.3}",
        best.algorithm,
        best.makespan,
        slr(inst.dag(), inst.sys(), best.makespan),
        speedup(inst.dag(), inst.sys(), best.makespan),
    );
    if let Some(path) = flags.get("out") {
        std::fs::write(path, serde_json::to_string_pretty(&best.schedule)?)?;
        let _ = writeln!(out, "wrote best schedule to {path}");
    }
    if let Some(path) = flags.get("gantt") {
        std::fs::write(path, to_svg(&best.schedule, &GanttStyle::default()))?;
        let _ = writeln!(out, "wrote Gantt chart to {path}");
    }
    Ok(out)
}

/// `explain` — trace one scheduling run: capture the decision log, engine
/// counters, and phase timings, and export them as a human summary, an
/// NDJSON event log, or a Chrome-trace JSON loadable in Perfetto /
/// `chrome://tracing`.
pub fn explain(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &["dag", "system", "alg", "format", "out", "jobs", "addr"],
    )?;
    if flags.has("service") {
        return explain_service(flags);
    }
    let dag = load_dag(flags.require("dag")?)?;
    let sys = load_system(flags.require("system")?, &dag)?;
    let alg_name = flags.require("alg")?;
    let alg = hetsched_core::algorithms::by_name(alg_name).ok_or_else(|| {
        CliError(format!(
            "unknown algorithm `{alg_name}`; run `hetsched-cli algorithms`"
        ))
    })?;
    let (sched, trace) =
        with_jobs_flag(flags, || hetsched_core::traced_schedule(&alg, &dag, &sys))?;
    validate(&dag, &sys, &sched)
        .map_err(|e| CliError(format!("internal error: invalid schedule: {e}")))?;
    // Zero-perturbation guarantee, cross-checked on every run: the traced
    // schedule must be bit-identical to an untraced one.
    let untraced = with_jobs_flag(flags, || alg.schedule(&dag, &sys))?;
    if serde_json::to_string(&sched)? != serde_json::to_string(&untraced)? {
        return Err(CliError(
            "internal error: tracing perturbed the schedule".into(),
        ));
    }

    let format = flags.get("format").unwrap_or("summary");
    let payload = match format {
        "summary" => explain_summary(alg_name, &sys, &sched, &trace),
        "ndjson" => hetsched_trace::ndjson::event_log(&trace),
        "chrome-trace" => hetsched_trace::chrome::to_chrome_trace(&trace, sys.num_procs()),
        other => {
            return Err(CliError(format!(
                "unknown --format `{other}` (summary, ndjson, chrome-trace)"
            )))
        }
    };
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &payload)?;
        Ok(format!(
            "wrote {format} trace ({} events, {} placements) to {path}\n",
            trace.events.len(),
            trace.num_placements(),
        ))
    } else {
        Ok(payload)
    }
}

/// `explain --service` — drain the span journals of a running deployment
/// (gateway and, when one is fronting shards, every shard behind it) and
/// merge them into one Chrome-trace timeline.
fn explain_service(flags: &Flags) -> Result<String, CliError> {
    let addr = flags.require("addr")?;
    let stats_reply = send_line(addr, r#"{"op":"stats"}"#)?;
    let stats: serde_json::Value = serde_json::from_str(stats_reply.trim_end())?;
    // A gateway's stats carry its shard roster; a plain shard's do not —
    // then the target itself is the only journal to drain.
    let shard_addrs: Vec<String> = stats["gateway"]["shards"]
        .as_array()
        .map(|snaps| {
            snaps
                .iter()
                .filter_map(|s| s["addr"].as_str().map(String::from))
                .collect()
        })
        .unwrap_or_default();
    let (gateway_spans, shard_journals) = if shard_addrs.is_empty() {
        (Vec::new(), vec![(addr.to_string(), drain_journal(addr)?)])
    } else {
        let mut shards = Vec::with_capacity(shard_addrs.len());
        for shard in &shard_addrs {
            // A down shard must not sink the whole timeline; its spans
            // are simply absent.
            let spans = drain_journal(shard).unwrap_or_default();
            shards.push((shard.clone(), spans));
        }
        (drain_journal(addr)?, shards)
    };
    let total: usize =
        gateway_spans.len() + shard_journals.iter().map(|(_, s)| s.len()).sum::<usize>();
    let payload = hetsched_serve::merge_chrome_trace(&gateway_spans, &shard_journals);
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &payload)?;
        Ok(format!(
            "wrote merged service timeline ({total} spans, {} journals) to {path}\n",
            1 + shard_journals.len(),
        ))
    } else {
        Ok(payload)
    }
}

/// Send one `journal` op and return the drained spans.
fn drain_journal(addr: &str) -> Result<Vec<hetsched_serve::SpanRecord>, CliError> {
    let reply = send_line(addr, r#"{"op":"journal"}"#)?;
    let v: serde_json::Value = serde_json::from_str(reply.trim_end())?;
    if v["status"].as_str() != Some("ok") {
        return Err(CliError(format!("{addr} refused the journal op: {reply}")));
    }
    Ok(serde_json::from_value(v["journal"]["spans"].clone())?)
}

/// One NDJSON round trip: connect, send `line`, read the reply line.
fn send_line(addr: &str, line: &str) -> Result<String, CliError> {
    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError(format!("connecting to {addr}: {e}")))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(CliError(format!("{addr} closed the connection")));
    }
    Ok(reply)
}

/// Human-readable `explain` report: run header, phase timings, engine
/// counters, and the placement decision log.
fn explain_summary(
    alg_name: &str,
    sys: &System,
    sched: &Schedule,
    trace: &hetsched_trace::Trace,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{alg_name} on {} tasks x {} processors: makespan {:.4}, {} events, {} placements ({} duplicates), {:.3} ms",
        sched.num_scheduled(),
        sys.num_procs(),
        sched.makespan(),
        trace.events.len(),
        trace.num_placements(),
        sched.num_duplicates(),
        trace.wall_ns as f64 / 1e6,
    );
    if !trace.phases.is_empty() {
        let _ = writeln!(out, "phases:");
        for p in &trace.phases {
            let pct = if trace.wall_ns > 0 {
                100.0 * p.dur_ns as f64 / trace.wall_ns as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>10.3} ms  ({pct:.1}%)",
                p.name,
                p.dur_ns as f64 / 1e6
            );
        }
    }
    let c = &trace.counters;
    let _ = writeln!(out, "engine counters:");
    for (name, v) in [
        ("eft_best_queries", c.eft_best_queries),
        ("eft_candidate_queries", c.eft_candidate_queries),
        ("drt_frontier_builds", c.drt_frontier_builds),
        ("drt_single_copy_preds", c.drt_single_copy_preds),
        ("drt_multi_copy_preds", c.drt_multi_copy_preds),
        ("gap_fast_rejects", c.gap_fast_rejects),
        ("gap_cached_searches", c.gap_cached_searches),
        ("gap_full_scans", c.gap_full_scans),
        ("append_queries", c.append_queries),
        ("timeline_inserts", c.timeline_inserts),
    ] {
        let _ = writeln!(out, "  {name:<22} {v}");
    }
    let _ = writeln!(out, "decisions (start-time order):");
    for e in &trace.events {
        if let hetsched_trace::Event::Placed {
            step,
            task,
            proc,
            start,
            finish,
            duplicate,
        } = e
        {
            let _ = writeln!(
                out,
                "  step {step:>4}: task {task:>4} -> proc {proc:>3}  [{start:.4}, {finish:.4}]{}",
                if *duplicate { "  (duplicate)" } else { "" }
            );
        }
    }
    out
}

/// `validate` — re-check a stored schedule.
pub fn validate_cmd(flags: &Flags) -> Result<String, CliError> {
    check_allowed(flags, &["dag", "system", "schedule"])?;
    let dag = load_dag(flags.require("dag")?)?;
    let sys = load_system(flags.require("system")?, &dag)?;
    let sched = load_schedule(flags.require("schedule")?)?;
    match validate(&dag, &sys, &sched) {
        Ok(()) => Ok(format!(
            "schedule is valid: makespan {:.4}, {} tasks on {} processors\n",
            sched.makespan(),
            sched.num_scheduled(),
            sched.num_procs()
        )),
        Err(e) => Err(CliError(format!("schedule INVALID: {e}"))),
    }
}

/// `simulate` — replay in the discrete-event simulator, with optional noise.
pub fn simulate_cmd(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &[
            "dag",
            "system",
            "schedule",
            "exec-cv",
            "comm-spread",
            "draws",
            "seed",
        ],
    )?;
    let dag = load_dag(flags.require("dag")?)?;
    let sys = load_system(flags.require("system")?, &dag)?;
    let sched = load_schedule(flags.require("schedule")?)?;
    validate(&dag, &sys, &sched).map_err(|e| CliError(format!("schedule INVALID: {e}")))?;

    let exec_cv: f64 = flags.get_or("exec-cv", 0.0)?;
    let comm_spread: f64 = flags.get_or("comm-spread", 0.0)?;
    let draws: u64 = flags.get_or("draws", 1)?;
    let seed: u64 = flags.get_or("seed", 0)?;

    let base = simulate(&dag, &sys, &sched, &SimConfig::default()).makespan;
    let mut out = format!(
        "predicted makespan {:.4}, noiseless replay {:.4}\n",
        sched.makespan(),
        base
    );
    if exec_cv > 0.0 || comm_spread > 0.0 {
        let mut sum = 0.0;
        let mut worst = f64::NEG_INFINITY;
        for k in 0..draws {
            let r = simulate(
                &dag,
                &sys,
                &sched,
                &SimConfig {
                    exec_noise: if exec_cv > 0.0 {
                        Noise::Gamma { cv: exec_cv }
                    } else {
                        Noise::None
                    },
                    comm_noise: if comm_spread > 0.0 {
                        Noise::Uniform {
                            spread: comm_spread,
                        }
                    } else {
                        Noise::None
                    },
                    seed: seed ^ k,
                },
            );
            sum += r.makespan;
            worst = worst.max(r.makespan);
        }
        let mean = sum / draws as f64;
        out.push_str(&format!(
            "noisy replay over {draws} draws (exec cv {exec_cv}, comm spread {comm_spread}): mean {:.4} ({:.3}x), worst {:.4} ({:.3}x)\n",
            mean, mean / base, worst, worst / base,
        ));
    }
    Ok(out)
}

/// `info` — structural statistics of a DAG.
pub fn info(flags: &Flags) -> Result<String, CliError> {
    check_allowed(flags, &["dag"])?;
    let dag = load_dag(flags.require("dag")?)?;
    let (cp, path) = hetsched_dag::analysis::critical_path(&dag);
    Ok(format!(
        "tasks {}, edges {}, depth {}, width {}, entries {}, exits {}\n\
         total weight {:.3}, CCR {:.3}\n\
         critical path: length {:.3}, {} tasks\n",
        dag.num_tasks(),
        dag.num_edges(),
        hetsched_dag::topo::depth(&dag),
        hetsched_dag::topo::width(&dag),
        dag.entry_tasks().count(),
        dag.exit_tasks().count(),
        dag.total_weight(),
        dag.ccr(),
        cp,
        path.len(),
    ))
}

/// `convert` — import an STG benchmark file as a DagSpec JSON (or export
/// a JSON DAG back to STG).
pub fn convert(flags: &Flags) -> Result<String, CliError> {
    check_allowed(flags, &["from", "out", "comm"])?;
    let from = flags.require("from")?;
    let out = flags.require("out")?.to_string();
    let comm: f64 = flags.get_or("comm", 0.0)?;
    let from_stg = from.ends_with(".stg");
    let to_stg = out.ends_with(".stg");
    let dag = if from_stg {
        let text =
            std::fs::read_to_string(from).map_err(|e| CliError(format!("reading {from}: {e}")))?;
        hetsched_dag::stg::parse_stg(&text, comm)
            .map_err(|e| CliError(format!("parsing {from}: {e}")))?
    } else {
        load_dag(from)?
    };
    if to_stg {
        std::fs::write(&out, hetsched_dag::stg::to_stg(&dag))?;
    } else {
        let spec = DagSpec::from_dag(&dag);
        std::fs::write(&out, serde_json::to_string_pretty(&spec)?)?;
    }
    Ok(format!(
        "converted {from} -> {out}: {} tasks, {} edges, CCR {:.3}\n",
        dag.num_tasks(),
        dag.num_edges(),
        dag.ccr()
    ))
}

/// Assemble a [`hetsched_serve::ServeConfig`] from flags, starting from the
/// defaults.
fn serve_config(flags: &Flags) -> Result<hetsched_serve::ServeConfig, CliError> {
    let d = hetsched_serve::ServeConfig::default();
    Ok(hetsched_serve::ServeConfig {
        workers: flags.get_or("workers", d.workers)?,
        queue_capacity: flags.get_or("queue", d.queue_capacity)?,
        cache_capacity: flags.get_or("cache", d.cache_capacity)?,
        instance_cache_capacity: flags.get_or("instance-cache", d.instance_cache_capacity)?,
        default_deadline_ms: flags.get_or("deadline-ms", d.default_deadline_ms)?,
    })
}

/// `serve` — run the resident scheduling daemon until a `shutdown` request
/// arrives. TCP by default; `--stdin` answers NDJSON on stdio instead;
/// `--shards N` runs N shard daemons behind an in-process gateway.
pub fn serve(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &[
            "addr",
            "shards",
            "workers",
            "queue",
            "cache",
            "instance-cache",
            "deadline-ms",
            "jobs",
        ],
    )?;
    let config = serve_config(flags)?;
    // Daemon-wide default for intra-algorithm search threads; a request's
    // own `jobs` option still overrides it per job.
    if let Some(v) = flags.get("jobs") {
        let j: usize = v
            .parse()
            .map_err(|e| CliError(format!("--jobs: invalid value `{v}` ({e})")))?;
        hetsched_core::par::set_global_jobs(Some(j));
    }
    let shards: usize = flags.get_or("shards", 0)?;
    if shards > 0 {
        if flags.has("stdin") {
            return Err(CliError("--shards and --stdin are exclusive".into()));
        }
        let mut shard_set = hetsched_gateway::LocalShards::spawn(shards, &config)
            .map_err(|e| CliError(format!("spawning shards: {e}")))?;
        let gw_config = hetsched_gateway::GatewayConfig {
            backends: shard_set.addrs(),
            default_deadline_ms: config.default_deadline_ms,
            ..Default::default()
        };
        let addr = flags.get("addr").unwrap_or("127.0.0.1:7077");
        let server = hetsched_gateway::GatewayServer::bind(addr, gw_config)
            .map_err(|e| CliError(format!("binding {addr}: {e}")))?;
        let local = server.local_addr()?;
        // Shard lines first: scripts scrape the LAST "listening on " line
        // for the client-facing (gateway) address.
        for (i, a) in shard_set.addrs().iter().enumerate() {
            println!("shard {i} on {a}");
        }
        println!("listening on {local}");
        std::io::Write::flush(&mut std::io::stdout())?;
        let router = server.router();
        server.run()?;
        shard_set.shutdown_all();
        return Ok(format!(
            "routed {} requests across {shards} shards\n",
            hetsched_gateway::metrics::read(&router.metrics().requests)
        ));
    }
    if flags.has("stdin") {
        let service = hetsched_serve::Service::start(config);
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        hetsched_serve::serve_lines(&service, stdin.lock(), stdout.lock())?;
        Ok(format!(
            "served {} requests\n",
            service.stats_body().requests
        ))
    } else {
        let addr = flags.get("addr").unwrap_or("127.0.0.1:7077");
        let server = hetsched_serve::TcpServer::bind(addr, config)
            .map_err(|e| CliError(format!("binding {addr}: {e}")))?;
        let local = server.local_addr()?;
        // Printed (and flushed) before blocking so scripts binding port 0
        // can scrape the actual port.
        println!("listening on {local}");
        std::io::Write::flush(&mut std::io::stdout())?;
        let service = server.service();
        server.run()?;
        Ok(format!(
            "served {} requests\n",
            service.stats_body().requests
        ))
    }
}

/// `gateway` — run the scale-out front door against already-running shard
/// daemons (for the single-process topology, use `serve --shards N`).
pub fn gateway(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &[
            "addr",
            "backends",
            "inflight",
            "queue",
            "max-pending",
            "threads",
            "deadline-ms",
            "connect-timeout-ms",
        ],
    )?;
    let backends: Vec<String> = flags
        .require("backends")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err(CliError("--backends lists no shard addresses".into()));
    }
    let d = hetsched_gateway::GatewayConfig::default();
    let config = hetsched_gateway::GatewayConfig {
        backends,
        inflight_per_shard: flags.get_or("inflight", d.inflight_per_shard)?,
        queue_capacity: flags.get_or("queue", d.queue_capacity)?,
        max_pending_per_conn: flags.get_or("max-pending", d.max_pending_per_conn)?,
        router_threads: flags.get_or("threads", d.router_threads)?,
        default_deadline_ms: flags.get_or("deadline-ms", d.default_deadline_ms)?,
        connect_timeout_ms: flags.get_or("connect-timeout-ms", d.connect_timeout_ms)?,
        propagate_shutdown: d.propagate_shutdown,
    };
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7070");
    let server = hetsched_gateway::GatewayServer::bind(addr, config)
        .map_err(|e| CliError(format!("binding {addr}: {e}")))?;
    let local = server.local_addr()?;
    println!("listening on {local}");
    std::io::Write::flush(&mut std::io::stdout())?;
    let router = server.router();
    server.run()?;
    Ok(format!(
        "routed {} requests\n",
        hetsched_gateway::metrics::read(&router.metrics().requests)
    ))
}

/// `request` — send one NDJSON request to a running daemon and print the
/// raw response line.
pub fn request(flags: &Flags) -> Result<String, CliError> {
    check_allowed(
        flags,
        &[
            "addr",
            "op",
            "dag",
            "system",
            "alg",
            "algs",
            "parent",
            "deltas",
            "deadline-ms",
            "jobs",
            "trace-id",
        ],
    )?;
    let addr = flags.require("addr")?;
    let op = flags.get("op").unwrap_or("schedule");
    let line = match op {
        "hello" => r#"{"op":"hello"}"#.to_string(),
        "stats" => r#"{"op":"stats"}"#.to_string(),
        "metrics" => r#"{"op":"metrics"}"#.to_string(),
        "journal" => r#"{"op":"journal"}"#.to_string(),
        "shutdown" => r#"{"op":"shutdown"}"#.to_string(),
        "schedule" => {
            let read_json = |path: &str| -> Result<serde_json::Value, CliError> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError(format!("reading {path}: {e}")))?;
                Ok(serde_json::from_str(&text)?)
            };
            let dag = read_json(flags.require("dag")?)?;
            let system = read_json(flags.require("system")?)?;
            let mut options = serde_json::Map::new();
            if flags.has("simulate") {
                options.insert("simulate", serde_json::Value::Bool(true));
            }
            if flags.has("trace") {
                options.insert("trace", serde_json::Value::Bool(true));
            }
            if let Some(ms) = flags.get("deadline-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| CliError(format!("--deadline-ms: invalid value `{ms}` ({e})")))?;
                options.insert("deadline_ms", serde_json::to_value(ms)?);
            }
            if let Some(j) = flags.get("jobs") {
                let j: usize = j
                    .parse()
                    .map_err(|e| CliError(format!("--jobs: invalid value `{j}` ({e})")))?;
                options.insert("jobs", serde_json::to_value(j)?);
            }
            if let Some(ctx) = trace_ctx_option(flags) {
                options.insert("trace_ctx", ctx);
            }
            let mut req = serde_json::Map::new();
            req.insert("op", serde_json::Value::String("schedule".into()));
            req.insert("dag", dag);
            req.insert("system", system);
            req.insert(
                "algorithm",
                serde_json::Value::String(flags.require("alg")?.into()),
            );
            req.insert("options", serde_json::Value::Object(options));
            serde_json::to_string(&serde_json::Value::Object(req))?
        }
        "portfolio" => {
            let read_json = |path: &str| -> Result<serde_json::Value, CliError> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError(format!("reading {path}: {e}")))?;
                Ok(serde_json::from_str(&text)?)
            };
            let dag = read_json(flags.require("dag")?)?;
            let system = read_json(flags.require("system")?)?;
            // empty --algs (or none) means "every registered algorithm"
            let algorithms: Vec<serde_json::Value> = flags
                .get("algs")
                .map(|s| {
                    s.split(',')
                        .map(str::trim)
                        .filter(|p| !p.is_empty())
                        .map(|p| serde_json::Value::String(p.into()))
                        .collect()
                })
                .unwrap_or_default();
            let mut options = serde_json::Map::new();
            if let Some(ms) = flags.get("deadline-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| CliError(format!("--deadline-ms: invalid value `{ms}` ({e})")))?;
                options.insert("deadline_ms", serde_json::to_value(ms)?);
            }
            if let Some(j) = flags.get("jobs") {
                let j: usize = j
                    .parse()
                    .map_err(|e| CliError(format!("--jobs: invalid value `{j}` ({e})")))?;
                options.insert("jobs", serde_json::to_value(j)?);
            }
            if let Some(ctx) = trace_ctx_option(flags) {
                options.insert("trace_ctx", ctx);
            }
            let mut req = serde_json::Map::new();
            req.insert("op", serde_json::Value::String("portfolio".into()));
            req.insert("dag", dag);
            req.insert("system", system);
            req.insert("algorithms", serde_json::Value::Array(algorithms));
            req.insert("options", serde_json::Value::Object(options));
            serde_json::to_string(&serde_json::Value::Object(req))?
        }
        "patch" => {
            let read_json = |path: &str| -> Result<serde_json::Value, CliError> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError(format!("reading {path}: {e}")))?;
                Ok(serde_json::from_str(&text)?)
            };
            // Deltas come from a file (like --dag/--system) or inline JSON:
            // a value starting with `[` is parsed directly.
            let deltas_arg = flags.require("deltas")?;
            let deltas = if deltas_arg.trim_start().starts_with('[') {
                serde_json::from_str(deltas_arg)?
            } else {
                read_json(deltas_arg)?
            };
            let mut options = serde_json::Map::new();
            if flags.has("simulate") {
                options.insert("simulate", serde_json::Value::Bool(true));
            }
            if flags.has("trace") {
                options.insert("trace", serde_json::Value::Bool(true));
            }
            if let Some(ms) = flags.get("deadline-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|e| CliError(format!("--deadline-ms: invalid value `{ms}` ({e})")))?;
                options.insert("deadline_ms", serde_json::to_value(ms)?);
            }
            if let Some(j) = flags.get("jobs") {
                let j: usize = j
                    .parse()
                    .map_err(|e| CliError(format!("--jobs: invalid value `{j}` ({e})")))?;
                options.insert("jobs", serde_json::to_value(j)?);
            }
            if let Some(ctx) = trace_ctx_option(flags) {
                options.insert("trace_ctx", ctx);
            }
            let mut req = serde_json::Map::new();
            req.insert("op", serde_json::Value::String("patch".into()));
            req.insert(
                "parent",
                serde_json::Value::String(flags.require("parent")?.into()),
            );
            req.insert(
                "algorithm",
                serde_json::Value::String(flags.require("alg")?.into()),
            );
            req.insert("deltas", deltas);
            req.insert("options", serde_json::Value::Object(options));
            serde_json::to_string(&serde_json::Value::Object(req))?
        }
        other => {
            let msg = format!(
                "unknown --op `{other}` (schedule, portfolio, patch, hello, stats, metrics, \
                 journal, shutdown)"
            );
            return Err(CliError(msg));
        }
    };

    let reply = send_line(addr, &line)?;
    // The `metrics` op answers Prometheus text wrapped in the JSON
    // envelope; unwrap it so the output scrapes directly.
    if op == "metrics" {
        let v: serde_json::Value = serde_json::from_str(reply.trim_end())?;
        if let Some(text) = v.get("metrics").and_then(serde_json::Value::as_str) {
            return Ok(text.to_string());
        }
    }
    // Gateway `stats` answers a fleet snapshot; render it as a compact
    // table (shard stats keep the raw JSON, scripts depend on it).
    if op == "stats" {
        let v: serde_json::Value = serde_json::from_str(reply.trim_end())?;
        if let Some(table) = gateway_stats_table(&v) {
            return Ok(table);
        }
    }
    Ok(format!("{}\n", reply.trim_end()))
}

/// Render a gateway `stats` reply as an aligned per-shard table, or
/// `None` when the reply did not come from a gateway.
fn gateway_stats_table(v: &serde_json::Value) -> Option<String> {
    use std::fmt::Write as _;
    let gw = v.get("gateway")?.as_object()?;
    let snaps = gw.get("shards")?.as_array()?;
    let count = |key: &str| gw.get(key).and_then(serde_json::Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gateway: requests {}  forwarded {}  dedup_hits {}  sheds {}  timeouts {}  \
         reroutes {}  shard_errors {}  errors {}  p50 {:.0}us  p99 {:.0}us",
        count("requests"),
        count("forwarded"),
        count("dedup_hits"),
        count("sheds"),
        count("timeouts"),
        count("reroutes"),
        count("shard_errors"),
        count("errors"),
        gw.get("latency_p50_us")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
        gw.get("latency_p99_us")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "{:<21} {:>2} {:>8} {:>8} {:>8} {:>9} {:>5} {:>6} {:>7} {:>10} {:>11}",
        "shard",
        "up",
        "inflight",
        "requests",
        "computed",
        "memo_hits",
        "busy",
        "errors",
        "panics",
        "qwait_p99",
        "compute_p99"
    );
    let bodies = v.get("shards").and_then(serde_json::Value::as_array);
    for (i, snap) in snaps.iter().enumerate() {
        // The live per-shard stats body; `null` when the fan-out could
        // not reach the shard.
        let body = bodies.and_then(|b| b.get(i)).cloned().unwrap_or_default();
        let b = |key: &str| {
            body.get(key)
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0)
        };
        let us = |key: &str| {
            body.get(key)
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            out,
            "{:<21} {:>2} {:>8} {:>8} {:>8} {:>9} {:>5} {:>6} {:>7} {:>9.0}u {:>10.0}u",
            snap["addr"].as_str().unwrap_or("?"),
            snap["up"].as_bool().map(u64::from).unwrap_or(0),
            snap["inflight"].as_u64().unwrap_or(0),
            b("requests"),
            b("computed"),
            b("cache_hits"),
            b("busy_rejections"),
            b("errors"),
            b("connection_panics"),
            us("qwait_p99_us"),
            us("compute_p99_us"),
        );
    }
    Some(out)
}

/// The `trace_ctx` request option for `--timing`/`--trace-id`: requests
/// carrying it get the per-tier timing block and their spans journaled.
/// The id is the caller's `--trace-id` if given, else derived from the
/// wall clock.
fn trace_ctx_option(flags: &Flags) -> Option<serde_json::Value> {
    if !flags.has("timing") && flags.get("trace-id").is_none() {
        return None;
    }
    let id = match flags.get("trace-id") {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            format!("{:016x}", (nanos as u64) ^ ((nanos >> 64) as u64))
        }
    };
    Some(serde_json::json!({ "trace_id": id }))
}

/// `algorithms` — list registry names.
pub fn algorithms() -> String {
    let mut s = String::from("available schedulers (--alg):\n");
    for name in hetsched_core::algorithms::known_names() {
        s.push_str("  ");
        s.push_str(name);
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Flags;

    fn argv(s: &str) -> Flags {
        Flags::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("hetsched-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_system(path: &str) {
        std::fs::write(
            path,
            r#"{"processors": {"kind": "speeds", "speeds": [2.0, 1.0, 1.0]},
                "network": {"topology": "fully_connected", "startup": 0.0, "bandwidth": 1.0}}"#,
        )
        .unwrap();
    }

    #[test]
    fn full_cli_pipeline() {
        let dag_path = tmp("pipeline-dag.json");
        let sys_path = tmp("pipeline-sys.json");
        let sched_path = tmp("pipeline-sched.json");
        let gantt_path = tmp("pipeline-gantt.svg");

        // generate
        let msg = generate(&argv(&format!(
            "--kind gauss --m 6 --ccr 1.0 --seed 7 --out {dag_path}"
        )))
        .unwrap();
        assert!(msg.contains("20 tasks"), "{msg}");

        write_system(&sys_path);

        // schedule
        let msg = schedule(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg HEFT --out {sched_path} --gantt {gantt_path}"
        )))
        .unwrap();
        assert!(msg.contains("HEFT: makespan"), "{msg}");
        assert!(std::fs::read_to_string(&gantt_path)
            .unwrap()
            .starts_with("<svg"));

        // validate
        let msg = validate_cmd(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --schedule {sched_path}"
        )))
        .unwrap();
        assert!(msg.contains("schedule is valid"), "{msg}");

        // simulate with noise
        let msg = simulate_cmd(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --schedule {sched_path} --exec-cv 0.3 --draws 5"
        )))
        .unwrap();
        assert!(msg.contains("noisy replay over 5 draws"), "{msg}");

        // info
        let msg = info(&argv(&format!("--dag {dag_path}"))).unwrap();
        assert!(msg.contains("tasks 20"), "{msg}");
    }

    #[test]
    fn every_generator_kind_works() {
        for (kind, extra) in [
            ("random", "--n 20"),
            ("gauss", "--m 5"),
            ("fft", "--points 8"),
            ("laplace", "--grid 4"),
            ("cholesky", "--tiles 3"),
            ("forkjoin", "--sections 2 --width 3"),
            ("stencil", "--depth 3 --width 4"),
            ("irregular", ""),
            ("out-tree", "--depth 3"),
            ("in-tree", "--depth 3"),
            ("divconq", "--depth 3"),
            ("sp", "--n 10"),
        ] {
            let path = tmp(&format!("gen-{kind}.json"));
            let msg = generate(&argv(&format!("--kind {kind} {extra} --out {path}")))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(msg.contains("tasks"), "{kind}: {msg}");
            // and the written file loads back
            let dag = load_dag(&path).unwrap();
            assert!(dag.num_tasks() > 0);
        }
    }

    #[test]
    fn explain_formats_and_outputs() {
        let dag_path = tmp("explain-dag.json");
        let sys_path = tmp("explain-sys.json");
        let trace_path = tmp("explain-trace.json");
        generate(&argv(&format!(
            "--kind gauss --m 5 --ccr 1.0 --seed 9 --out {dag_path}"
        )))
        .unwrap();
        write_system(&sys_path);

        // summary: header + phases + counters + decision log
        let msg = explain(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg ILS-D"
        )))
        .unwrap();
        assert!(msg.contains("ILS-D on 14 tasks x 3 processors"), "{msg}");
        assert!(msg.contains("engine counters:"), "{msg}");
        assert!(msg.contains("eft_best_queries"), "{msg}");
        assert!(msg.contains("decisions (start-time order):"), "{msg}");
        assert!(msg.contains("-> proc"), "{msg}");

        // ndjson: one self-describing JSON object per line
        let nd = explain(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg HEFT --format ndjson"
        )))
        .unwrap();
        let mut placements = 0;
        for line in nd.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["event"].as_str().is_some(), "line: {line}");
            if v["event"].as_str() == Some("placed") {
                placements += 1;
            }
        }
        assert_eq!(placements, 14);

        // chrome-trace to a file: valid JSON with per-processor lanes
        let msg = explain(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg HEFT --format chrome-trace --out {trace_path}"
        )))
        .unwrap();
        assert!(msg.contains("wrote chrome-trace trace"), "{msg}");
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = v
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .unwrap();
        assert!(!events.is_empty());

        // unknown format is reported
        let err = explain(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg HEFT --format nope"
        )))
        .unwrap_err();
        assert!(err.0.contains("unknown --format"), "{err}");
    }

    #[test]
    fn unknown_algorithm_and_kind_are_reported() {
        let dag_path = tmp("err-dag.json");
        let sys_path = tmp("err-sys.json");
        generate(&argv(&format!("--kind random --n 5 --out {dag_path}"))).unwrap();
        write_system(&sys_path);
        let err = schedule(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg WAT"
        )))
        .unwrap_err();
        assert!(err.0.contains("unknown algorithm"));
        let err = generate(&argv("--kind nope --out /tmp/x.json")).unwrap_err();
        assert!(err.0.contains("unknown workload kind"));
    }

    #[test]
    fn corrupted_schedule_fails_validation() {
        let dag_path = tmp("bad-dag.json");
        let sys_path = tmp("bad-sys.json");
        let sched_path = tmp("bad-sched.json");
        generate(&argv(&format!(
            "--kind random --n 8 --seed 3 --out {dag_path}"
        )))
        .unwrap();
        write_system(&sys_path);
        schedule(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg HEFT --out {sched_path}"
        )))
        .unwrap();
        // corrupt: shift a start time inside the JSON
        let text = std::fs::read_to_string(&sched_path).unwrap();
        let mut sched: Schedule = serde_json::from_str(&text).unwrap();
        // serialize a schedule for a different number of tasks
        sched = Schedule::new(sched.num_tasks() + 1, sched.num_procs());
        std::fs::write(&sched_path, serde_json::to_string(&sched).unwrap()).unwrap();
        let err = validate_cmd(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --schedule {sched_path}"
        )))
        .unwrap_err();
        assert!(err.0.contains("INVALID"), "{err}");
    }

    #[test]
    fn convert_round_trips_stg() {
        let stg_path = tmp("conv.stg");
        let json_path = tmp("conv.json");
        let back_path = tmp("conv-back.stg");
        std::fs::write(&stg_path, "3\n0 2.0 0\n1 3.0 1 0\n2 4.0 1 0\n").unwrap();
        let msg = convert(&argv(&format!(
            "--from {stg_path} --comm 5 --out {json_path}"
        )))
        .unwrap();
        assert!(msg.contains("3 tasks"), "{msg}");
        let dag = load_dag(&json_path).unwrap();
        assert_eq!(dag.num_edges(), 2);
        assert_eq!(dag.ccr(), 10.0 / 9.0);
        // JSON -> STG
        let msg = convert(&argv(&format!("--from {json_path} --out {back_path}"))).unwrap();
        assert!(msg.contains("2 edges"), "{msg}");
        assert!(std::fs::read_to_string(&back_path)
            .unwrap()
            .contains("hetsched STG export"));
    }

    #[test]
    fn serve_config_from_flags() {
        let c = serve_config(&argv(
            "--workers 3 --queue 9 --cache 11 --instance-cache 5 --deadline-ms 1234",
        ))
        .unwrap();
        assert_eq!(c.workers, 3);
        assert_eq!(c.queue_capacity, 9);
        assert_eq!(c.cache_capacity, 11);
        assert_eq!(c.instance_cache_capacity, 5);
        assert_eq!(c.default_deadline_ms, 1234);
        let d = hetsched_serve::ServeConfig::default();
        assert_eq!(serve_config(&argv("")).unwrap().workers, d.workers);
        assert!(serve_config(&argv("--workers nope")).is_err());
    }

    #[test]
    fn request_round_trip_against_daemon() {
        let dag_path = tmp("req-dag.json");
        let sys_path = tmp("req-sys.json");
        generate(&argv(&format!(
            "--kind gauss --m 5 --ccr 1.0 --seed 1 --out {dag_path}"
        )))
        .unwrap();
        write_system(&sys_path);

        let server = hetsched_serve::TcpServer::bind(
            "127.0.0.1:0",
            hetsched_serve::ServeConfig {
                workers: 2,
                queue_capacity: 8,
                cache_capacity: 8,
                instance_cache_capacity: 8,
                default_deadline_ms: 10_000,
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let daemon = std::thread::spawn(move || server.run());

        let reply = request(&argv(&format!(
            "--addr {addr} --dag {dag_path} --system {sys_path} --alg HEFT --simulate"
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"), "reply: {reply}");
        assert_eq!(v["schedule"]["algorithm"].as_str(), Some("HEFT"));
        assert_eq!(v["schedule"]["cached"].as_bool(), Some(false));
        assert_eq!(
            v["schedule"]["sim"]["matches_prediction"].as_bool(),
            Some(true)
        );

        let parent = v["schedule"]["problem"].as_str().unwrap().to_string();
        assert_eq!(parent.len(), 16, "reply: {reply}");

        let reply = request(&argv(&format!("--addr {addr} --op stats"))).unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["stats"]["computed"].as_u64(), Some(1));

        // patch op: incremental reschedule keyed on the parent's problem
        // field (--simulate matches the parent's options, so the repair
        // path finds the memoized parent schedule)
        let reply = request(&argv(&format!(
            r#"--addr {addr} --op patch --parent {parent} --alg HEFT --simulate --deltas [{{"kind":"edge_data","src":0,"dst":4,"data":9.0}}]"#
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"), "reply: {reply}");
        assert_eq!(v["schedule"]["cached"].as_bool(), Some(false));
        assert_ne!(v["schedule"]["problem"].as_str(), Some(parent.as_str()));
        assert!(
            v["schedule"]["repair"].as_object().is_some(),
            "reply: {reply}"
        );

        // an unknown parent is a clean error reply, not a daemon death
        let reply = request(&argv(&format!(
            "--addr {addr} --op patch --parent 0000000000000000 --alg HEFT --deltas []"
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["status"].as_str(), Some("error"), "reply: {reply}");
        assert!(
            v["message"].as_str().unwrap().contains("unknown_parent"),
            "reply: {reply}"
        );

        // a traced request attaches the trace payload
        let reply = request(&argv(&format!(
            "--addr {addr} --dag {dag_path} --system {sys_path} --alg HEFT --trace"
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert!(
            v["schedule"]["trace"]["counters"]["eft_best_queries"]
                .as_u64()
                .unwrap()
                > 0,
            "reply: {reply}"
        );

        // the metrics op prints unwrapped Prometheus text
        let text = request(&argv(&format!("--addr {addr} --op metrics"))).unwrap();
        assert!(
            text.contains("# TYPE hetsched_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("hetsched_algorithm_latency_seconds_count{algorithm=\"HEFT\"}"),
            "{text}"
        );

        // portfolio op: per-member table plus the winning schedule
        let reply = request(&argv(&format!(
            "--addr {addr} --op portfolio --dag {dag_path} --system {sys_path} --algs HEFT,CPOP,PETS"
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(reply.trim()).unwrap();
        assert_eq!(v["status"].as_str(), Some("ok"), "reply: {reply}");
        let entries = v["portfolio"]["entries"].as_array().unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0]["algorithm"].as_str(), Some("HEFT"));
        let best = v["portfolio"]["best"].as_u64().unwrap() as usize;
        let best_makespan = entries[best]["makespan"].as_f64().unwrap();
        for e in entries {
            assert!(e["makespan"].as_f64().unwrap() >= best_makespan);
        }
        assert_eq!(
            v["portfolio"]["schedule"]["makespan"].as_f64(),
            Some(best_makespan)
        );

        let err = request(&argv(&format!("--addr {addr} --op frobnicate"))).unwrap_err();
        assert!(err.0.contains("unknown --op"), "{err}");

        let reply = request(&argv(&format!("--addr {addr} --op shutdown"))).unwrap();
        assert!(reply.contains("shutting_down"), "{reply}");
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn portfolio_reports_table_and_writes_best_schedule() {
        let dag_path = tmp("pf-dag.json");
        let sys_path = tmp("pf-sys.json");
        let sched_path = tmp("pf-sched.json");
        generate(&argv(&format!(
            "--kind gauss --m 6 --ccr 2.0 --seed 5 --out {dag_path}"
        )))
        .unwrap();
        write_system(&sys_path);

        let msg = portfolio(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --algs HEFT,CPOP,ILS-D --out {sched_path}"
        )))
        .unwrap();
        assert!(msg.contains("portfolio over 3 algorithms"), "{msg}");
        assert!(msg.contains("HEFT"), "{msg}");
        assert!(msg.contains("<- best"), "{msg}");
        assert!(msg.contains("best: "), "{msg}");

        // the written schedule is the winner and validates
        let sched = load_schedule(&sched_path).unwrap();
        let dag = load_dag(&dag_path).unwrap();
        let sys = load_system(&sys_path, &dag).unwrap();
        assert_eq!(validate(&dag, &sys, &sched), Ok(()));
        let mut best = f64::INFINITY;
        for name in ["HEFT", "CPOP", "ILS-D"] {
            let alg = hetsched_core::algorithms::by_name(name).unwrap();
            best = best.min(alg.schedule(&dag, &sys).makespan());
        }
        assert_eq!(sched.makespan().to_bits(), best.to_bits());

        // no --algs means the full registry
        let msg = portfolio(&argv(&format!("--dag {dag_path} --system {sys_path}"))).unwrap();
        let n = hetsched_core::algorithms::known_names().len();
        assert!(
            msg.contains(&format!("portfolio over {n} algorithms")),
            "{msg}"
        );

        // unknown member is reported
        let err = portfolio(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --algs HEFT,WAT"
        )))
        .unwrap_err();
        assert!(err.0.contains("unknown algorithm `WAT`"), "{err}");
    }

    #[test]
    fn jobs_flag_does_not_change_the_schedule() {
        let dag_path = tmp("jobs-dag.json");
        let sys_path = tmp("jobs-sys.json");
        let seq_path = tmp("jobs-sched-1.json");
        let par_path = tmp("jobs-sched-2.json");
        generate(&argv(&format!(
            "--kind gauss --m 6 --ccr 2.0 --seed 4 --out {dag_path}"
        )))
        .unwrap();
        write_system(&sys_path);
        for (jobs, path) in [("1", &seq_path), ("2", &par_path)] {
            schedule(&argv(&format!(
                "--dag {dag_path} --system {sys_path} --alg DUP-HEFT --jobs {jobs} --out {path}"
            )))
            .unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(&seq_path).unwrap(),
            std::fs::read_to_string(&par_path).unwrap(),
            "--jobs must never change the schedule"
        );
        let err = schedule(&argv(&format!(
            "--dag {dag_path} --system {sys_path} --alg HEFT --jobs nope"
        )))
        .unwrap_err();
        assert!(err.0.contains("--jobs"), "{err}");
    }

    #[test]
    fn algorithms_lists_registry() {
        let s = algorithms();
        assert!(s.contains("HEFT"));
        assert!(s.contains("ILS-D"));
        assert!(s.contains("BNB"));
    }
}
