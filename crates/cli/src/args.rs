//! Minimal flag parser: `--name value` pairs and bare `--switch`es.
//!
//! Hand-rolled rather than pulling a CLI crate: the approved offline
//! dependency set does not include one, and the needs here are tiny.

use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs (later occurrences win) and boolean
/// switches.
#[derive(Debug, Default, Clone)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Known boolean switches (flags that take no value).
const SWITCHES: &[&str] = &[
    "quiet", "help", "stdin", "simulate", "trace", "timing", "service",
];

impl Flags {
    /// Parse `args` (without the program/command names).
    ///
    /// # Errors
    /// Returns a message for a flag missing its value or a stray
    /// positional argument.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut f = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}` (flags start with --)"));
            };
            if SWITCHES.contains(&name) {
                f.switches.push(name.to_string());
                i += 1;
                continue;
            }
            let Some(v) = args.get(i + 1) else {
                return Err(format!("--{name} requires a value"));
            };
            f.values.insert(name.to_string(), v.clone());
            i += 2;
        }
        Ok(f)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    /// Message naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    /// Optional typed flag with a default.
    ///
    /// # Errors
    /// Message on parse failure.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("--{name}: invalid value `{v}` ({e})")),
        }
    }

    /// Names of value-flags that were provided (for unknown-flag checks).
    pub fn provided(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

/// Reject flags outside `allowed` (catches typos early).
///
/// # Errors
/// Message naming the first unknown flag.
pub fn check_allowed(flags: &Flags, allowed: &[&str]) -> Result<(), String> {
    for name in flags.provided() {
        if !allowed.contains(&name) {
            return Err(format!("unknown flag --{name} for this command"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = Flags::parse(&argv("--n 100 --ccr 2.5 --quiet")).unwrap();
        assert_eq!(f.get("n"), Some("100"));
        assert_eq!(f.get_or("ccr", 0.0).unwrap(), 2.5);
        assert!(f.has("quiet"));
        assert!(!f.has("help"));
        assert_eq!(f.get_or("missing", 7u32).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_value_and_positionals() {
        assert!(Flags::parse(&argv("--n")).is_err());
        assert!(Flags::parse(&argv("oops")).is_err());
    }

    #[test]
    fn require_and_type_errors() {
        let f = Flags::parse(&argv("--n abc")).unwrap();
        assert!(f.require("n").is_ok());
        assert!(f.require("out").is_err());
        assert!(f.get_or::<usize>("n", 1).is_err());
    }

    #[test]
    fn unknown_flag_check() {
        let f = Flags::parse(&argv("--n 5 --bogus 1")).unwrap();
        assert!(check_allowed(&f, &["n"]).is_err());
        assert!(check_allowed(&f, &["n", "bogus"]).is_ok());
    }

    #[test]
    fn later_value_wins() {
        let f = Flags::parse(&argv("--n 1 --n 2")).unwrap();
        assert_eq!(f.get("n"), Some("2"));
    }
}
