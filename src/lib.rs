//! # hetsched — facade crate
//!
//! Re-exports the full public API of the `hetsched` workspace so downstream
//! users can depend on a single crate. See the README for a tour and
//! `DESIGN.md` for the architecture.

#![forbid(unsafe_code)]

pub use hetsched_core as core;
pub use hetsched_dag as dag;
pub use hetsched_metrics as metrics;
pub use hetsched_platform as platform;
pub use hetsched_sim as sim;
pub use hetsched_trace as trace;
pub use hetsched_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use hetsched_dag::{Dag, DagBuilder, TaskId};
    pub use hetsched_platform::{EtcParams, Network, ProcId, System, Topology};
}
