//! Offline API-compatible stand-in for `serde_json`.
//!
//! The vendored `serde` crate models serialization as conversion to/from a
//! self-describing [`Value`] tree; this crate supplies the JSON text layer:
//! a recursive-descent parser, compact and pretty printers, and the familiar
//! entry points (`from_str`, `to_string`, `json!`, ...).

#![forbid(unsafe_code)]

pub use serde::{Map, Number, Value};

use std::fmt;

/// Error raised while parsing or converting JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 128 {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected `null`"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected `true`"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected `false`"))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                Ok(Value::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => break,
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
                Ok(Value::Object(map))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: require a following \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences from raw bytes.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if neg {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Value::Number(Number::Float(f)))
    }
}

/// Parse a JSON document into a `T`.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

/// Parse a JSON document from a reader.
pub fn from_reader<R: std::io::Read, T: serde::de::DeserializeOwned>(mut rdr: R) -> Result<T> {
    let mut buf = String::new();
    rdr.read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&buf)
}

/// Convert a [`Value`] into a `T`.
pub fn from_value<T: serde::de::DeserializeOwned>(v: Value) -> Result<T> {
    Ok(T::from_value(&v)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(t: T) -> Result<Value> {
    Ok(t.to_value())
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_f64(f: f64) -> String {
    if f.is_nan() || f.is_infinite() {
        // serde_json serializes non-finite floats as null.
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e16 {
        // Keep integral floats recognisable as floats, like serde_json's Ryu
        // output ("1.0" rather than "1").
        format!("{f:.1}")
    } else {
        let s = format!("{f}");
        s
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => match n {
            Number::PosInt(u) => out.push_str(&u.to_string()),
            Number::NegInt(i) => out.push_str(&i.to_string()),
            Number::Float(f) => out.push_str(&format_f64(*f)),
        },
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(t: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &t.to_value());
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string.
pub fn to_string_pretty<T: serde::Serialize>(t: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &t.to_value(), 0);
    Ok(out)
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: serde::Serialize>(mut w: W, t: &T) -> Result<()> {
    let s = to_string(t)?;
    w.write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Build a [`Value`] from JSON-like literal syntax.
///
/// Supports the shapes used in this workspace: `null`, objects with string
/// literal keys and serializable expression values (nested objects are built
/// with nested `json!` calls, which are themselves expressions), arrays of
/// expressions, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key, $crate::to_value(&$val).expect("json! value")); )*
        $crate::Value::Object(map)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item).expect("json! value") ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("42").unwrap(), Value::from(42u64));
        assert_eq!(from_str::<Value>("-7").unwrap(), Value::from(-7i64));
        let f = from_str::<Value>("2.5e2").unwrap();
        assert_eq!(f.as_f64(), Some(250.0));
    }

    #[test]
    fn parse_nested() {
        let v: Value = from_str(r#"{"a": [1, 2, {"b": "x\ny"}], "c": null}"#).unwrap();
        assert_eq!(v["a"][2]["b"].as_str(), Some("x\ny"));
        assert!(v["c"].is_null());
    }

    #[test]
    fn parse_unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9}\u{1F600}"));
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("01").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#""\q""#).is_err());
    }

    #[test]
    fn print_compact_and_pretty() {
        let v: Value = from_str(r#"{"k":[1,2.5,"s"],"e":{}}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"k":[1,2.5,"s"],"e":{}}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn json_macro() {
        let name = "p0";
        let rows = [1.0f64, 2.0];
        let v = json!({
            "name": name,
            "speeds": rows.to_vec(),
            "n": 3,
            "nested": json!({"k": 1}),
            "extra": Value::Null,
        });
        assert_eq!(v["name"].as_str(), Some("p0"));
        assert_eq!(v["speeds"][1].as_f64(), Some(2.0));
        assert_eq!(v["n"], 3);
        assert_eq!(v["nested"]["k"], 1);
        assert!(v["extra"].is_null());
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1, 2])[0], 1);
    }

    #[test]
    fn roundtrip_through_text() {
        let src = r#"{"a":1,"b":[true,false,null],"c":"line\n\"q\""}"#;
        let v: Value = from_str(src).unwrap();
        let printed = to_string(&v).unwrap();
        let v2: Value = from_str(&printed).unwrap();
        assert_eq!(v, v2);
    }
}
