//! Offline stand-in for `rand` 0.8.
//!
//! Provides the API subset the workspace uses — [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`] (`seed_from_u64`,
//! `from_seed`), and [`rngs::StdRng`] — with deterministic,
//! platform-independent output.
//!
//! The generator behind `StdRng` is **xoshiro256++** seeded through
//! SplitMix64, not upstream's ChaCha12: seeds reproduce across runs of
//! this workspace but are *not* bit-compatible with upstream rand.
//! Statistical quality is more than sufficient for the moment-matching
//! tolerances asserted in the test suites.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly "at random" by [`Rng::gen`] (the subset of
/// rand's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types uniformly sampleable from a range without modulo bias.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` (`span >= 1`) by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    // rejection zone: multiples of span fitting in 2^64
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // guard against rounding up to `hi`
                if v < hi { v } else { lo }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of an inferred type (uniform over its natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` (expanded via SplitMix64, rand's algorithm).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 stream, one 32-bit word per chunk (matches the
            // word-splitting rand 0.8 uses for seed expansion)
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++).
    ///
    /// API stand-in for rand's `StdRng`; identical seeds give identical
    /// streams on every platform, but the streams differ from upstream
    /// rand's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // avoid the all-zero state, which is a fixed point
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            let expect = n / 10;
            assert!(
                (c as f64 - expect as f64).abs() < 0.05 * expect as f64,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dyn(rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0.0..1.0).contains(&takes_dyn(&mut rng)));
    }
}
