//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` crate's value-tree data model without `syn`/`quote`:
//! the item is parsed directly from the raw `proc_macro::TokenStream`
//! and the impl is emitted as source text.
//!
//! Supported shapes (everything the workspace derives on):
//!
//! * named-field structs;
//! * tuple structs (1-field newtypes serialize transparently, n-field as
//!   arrays);
//! * unit structs;
//! * enums with unit, tuple, and struct variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`.
//!
//! Supported attributes: container `tag`, `rename_all = "snake_case"`;
//! field/variant `rename`, `default`, `skip_serializing_if = "path"`.
//! Anything else inside `#[serde(...)]` is a compile error rather than a
//! silent no-op. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// model

#[derive(Debug, Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
}

#[derive(Debug, Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug)]
enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    attrs: FieldAttrs,
    payload: Payload,
}

#[derive(Debug)]
enum Shape {
    Struct(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------
// parsing

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> Input {
    let mut it: Tokens = input.into_iter().peekable();
    let mut attrs = ContainerAttrs::default();

    // outer attributes + visibility before the item keyword
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                let group = expect_group(&mut it, Delimiter::Bracket, "attribute");
                parse_container_attr(group.stream(), &mut attrs);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "type name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic types are not supported (on `{name}`)");
    }

    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => {
                panic!("serde stand-in derive: unexpected token after `struct {name}`: {other:?}")
            }
        },
        "enum" => {
            let body = expect_group(&mut it, Delimiter::Brace, "enum body");
            Shape::Enum(parse_variants(body.stream()))
        }
        other => panic!("serde stand-in derive: expected `struct` or `enum`, found `{other}`"),
    };

    Input { name, attrs, shape }
}

fn expect_group(it: &mut Tokens, delim: Delimiter, what: &str) -> proc_macro::Group {
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => g,
        other => panic!("serde stand-in derive: expected {what}, found {other:?}"),
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected {what}, found {other:?}"),
    }
}

/// `#[serde(tag = "kind", rename_all = "snake_case")]` on the container.
fn parse_container_attr(attr: TokenStream, out: &mut ContainerAttrs) {
    let Some(items) = serde_attr_items(attr) else {
        return;
    };
    for (key, value) in items {
        match (key.as_str(), value) {
            ("tag", Some(v)) => out.tag = Some(v),
            ("rename_all", Some(v)) => {
                assert!(
                    v == "snake_case",
                    "serde stand-in derive: only rename_all = \"snake_case\" is supported"
                );
                out.rename_all = Some(v);
            }
            (other, _) => {
                panic!("serde stand-in derive: unsupported container attribute `{other}`")
            }
        }
    }
}

/// `#[serde(default, skip_serializing_if = "...", rename = "...")]`.
fn parse_field_attr(attr: TokenStream, out: &mut FieldAttrs) {
    let Some(items) = serde_attr_items(attr) else {
        return;
    };
    for (key, value) in items {
        match (key.as_str(), value) {
            ("default", None) => out.default = true,
            ("skip_serializing_if", Some(v)) => out.skip_serializing_if = Some(v),
            ("rename", Some(v)) => out.rename = Some(v),
            (other, _) => panic!("serde stand-in derive: unsupported field attribute `{other}`"),
        }
    }
}

/// If `attr` is a `serde(...)` attribute, split its arguments into
/// `(name, optional "string value")` pairs; `None` for non-serde attrs
/// (docs, `#[default]`, ...).
fn serde_attr_items(attr: TokenStream) -> Option<Vec<(String, Option<String>)>> {
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Some(Vec::new()),
    };
    let mut items = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(tok) = it.next() {
        let key = match tok {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde stand-in derive: unexpected token in #[serde(...)]: {other:?}"),
        };
        let mut value = None;
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            it.next();
            match it.next() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    let stripped = s
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .unwrap_or_else(|| {
                            panic!("serde stand-in derive: expected string literal for `{key}`")
                        });
                    value = Some(stripped.to_string());
                }
                other => panic!(
                    "serde stand-in derive: expected a literal after `{key} =`, found {other:?}"
                ),
            }
        }
        items.push((key, value));
    }
    Some(items)
}

/// Fields of a named struct / struct variant body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it: Tokens = body.into_iter().peekable();
    loop {
        let mut attrs = FieldAttrs::default();
        // attributes + visibility
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    let g = expect_group(&mut it, Delimiter::Bracket, "field attribute");
                    parse_field_attr(g.stream(), &mut attrs);
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = it.next() else { break };
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in derive: expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde stand-in derive: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type(&mut it);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Skip a type expression up to (and including) the next top-level `,`.
/// Tracks `<`/`>` depth so commas inside generics don't terminate early
/// (parenthesised tuples are single `Group` tokens and need no care).
fn skip_type(it: &mut Tokens) {
    let mut angle: i32 = 0;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

/// Arity of a tuple struct / tuple variant payload.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it: Tokens = body.into_iter().peekable();
    let mut count = 0;
    while it.peek().is_some() {
        // each `skip_type` call consumes one field (attrs/vis tokens are
        // harmless to skip_type — they contain no top-level commas)
        skip_type(&mut it);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it: Tokens = body.into_iter().peekable();
    loop {
        let mut attrs = FieldAttrs::default();
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            let g = expect_group(&mut it, Delimiter::Bracket, "variant attribute");
            parse_field_attr(g.stream(), &mut attrs);
        }
        let Some(tok) = it.next() else { break };
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in derive: expected variant name, found {other:?}"),
        };
        let payload = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                Payload::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                Payload::Tuple(count_tuple_fields(g))
            }
            _ => Payload::Unit,
        };
        // optional discriminant would appear as `= expr` — unsupported
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde stand-in derive: explicit enum discriminants are not supported");
        }
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant {
            name,
            attrs,
            payload,
        });
    }
    variants
}

/// CamelCase → snake_case (serde's algorithm for simple names).
fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_key(input: &Input, v: &Variant) -> String {
    if let Some(rename) = &v.attrs.rename {
        return rename.clone();
    }
    match input.attrs.rename_all.as_deref() {
        Some("snake_case") => snake_case(&v.name),
        _ => v.name.clone(),
    }
}

// ---------------------------------------------------------------------
// codegen: Serialize

/// Statements serializing named `fields` into a map variable `m`.
/// `access` produces the expression for a field (e.g. `&self.weight` or
/// `weight` for a match binding).
fn gen_named_ser(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = access(&f.name);
        let insert = format!(
            "m.insert({key:?}, ::serde::Serialize::to_value({expr}));",
            key = f.key()
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !({pred}({expr})) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
            out.push('\n');
        }
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let inserts = gen_named_ser(fields, |f| format!("&self.{f}"));
            format!("let mut m = ::serde::Map::new();\n{inserts}::serde::Value::Object(m)")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                items.join(", ")
            )
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(input, v);
                let vname = &v.name;
                let arm = match (&input.attrs.tag, &v.payload) {
                    // externally tagged (default)
                    (None, Payload::Unit) => format!(
                        "{name}::{vname} => ::serde::Value::String({key:?}.to_string()),"
                    ),
                    (None, Payload::Tuple(n)) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                                items.join(", ")
                            )
                        };
                        format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({key:?}, {payload});\n\
                             ::serde::Value::Object(m)\n}},",
                            binds = binds.join(", ")
                        )
                    }
                    (None, Payload::Struct(fields)) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inserts = gen_named_ser(fields, |f| f.to_string());
                        format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             {inserts}\
                             let mut outer = ::serde::Map::new();\n\
                             outer.insert({key:?}, ::serde::Value::Object(m));\n\
                             ::serde::Value::Object(outer)\n}},",
                            binds = binds.join(", ")
                        )
                    }
                    // internally tagged
                    (Some(tag), Payload::Unit) => format!(
                        "{name}::{vname} => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert({tag:?}, ::serde::Value::String({key:?}.to_string()));\n\
                         ::serde::Value::Object(m)\n}},"
                    ),
                    (Some(tag), Payload::Struct(fields)) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inserts = gen_named_ser(fields, |f| f.to_string());
                        format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({tag:?}, ::serde::Value::String({key:?}.to_string()));\n\
                             {inserts}\
                             ::serde::Value::Object(m)\n}},",
                            binds = binds.join(", ")
                        )
                    }
                    (Some(_), Payload::Tuple(_)) => panic!(
                        "serde stand-in derive: tuple variants cannot be internally tagged ({name}::{vname})"
                    ),
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// codegen: Deserialize

/// Expression extracting named `fields` from a map expression `m`,
/// rendered as `Name { field: ..., ... }` construction arguments.
fn gen_named_de(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let key = f.key();
        let missing = if f.attrs.default || f.attrs.skip_serializing_if.is_some() {
            "::core::default::Default::default()".to_string()
        } else {
            format!("return ::core::result::Result::Err(::serde::Error::missing_field({key:?}))")
        };
        out.push_str(&format!(
            "{field}: match m.get({key:?}) {{\n\
             ::core::option::Option::Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
             ::core::option::Option::None => {missing},\n\
             }},\n",
            field = f.name
        ));
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let field_init = gen_named_de(fields);
            format!(
                "let m = v.as_object().ok_or_else(|| ::serde::Error::type_mismatch(\"object ({name})\", v))?;\n\
                 ::core::result::Result::Ok({name} {{\n{field_init}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::type_mismatch(\"array ({name})\", v))?;\n\
                 if a.len() != {n} {{\n\
                 return ::core::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(input, name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_deserialize_enum(input: &Input, name: &str, variants: &[Variant]) -> String {
    if let Some(tag) = &input.attrs.tag {
        // internally tagged: {"<tag>": "variant", ...fields}
        let mut arms = String::new();
        for v in variants {
            let key = variant_key(input, v);
            let vname = &v.name;
            let construct = match &v.payload {
                Payload::Unit => format!("::core::result::Result::Ok({name}::{vname})"),
                Payload::Struct(fields) => {
                    let field_init = gen_named_de(fields);
                    format!("::core::result::Result::Ok({name}::{vname} {{\n{field_init}}})")
                }
                Payload::Tuple(_) => unreachable!("rejected in serialize codegen"),
            };
            arms.push_str(&format!("{key:?} => {{ {construct} }}\n"));
        }
        format!(
            "let m = v.as_object().ok_or_else(|| ::serde::Error::type_mismatch(\"object ({name})\", v))?;\n\
             let tag = m.get({tag:?}).and_then(::serde::Value::as_str)\
             .ok_or_else(|| ::serde::Error::missing_field({tag:?}))?;\n\
             match tag {{\n{arms}\
             other => ::core::result::Result::Err(::serde::Error::custom(format!(\
             \"unknown {name} variant `{{other}}`\"))),\n}}"
        )
    } else {
        // externally tagged: "Variant" | {"Variant": payload}
        let mut string_arms = String::new();
        let mut object_arms = String::new();
        for v in variants {
            let key = variant_key(input, v);
            let vname = &v.name;
            match &v.payload {
                Payload::Unit => string_arms.push_str(&format!(
                    "{key:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                )),
                Payload::Tuple(1) => object_arms.push_str(&format!(
                    "{key:?} => ::core::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(payload)?)),\n"
                )),
                Payload::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                        .collect();
                    object_arms.push_str(&format!(
                        "{key:?} => {{\n\
                         let a = payload.as_array().ok_or_else(|| \
                         ::serde::Error::type_mismatch(\"array ({name}::{vname})\", payload))?;\n\
                         if a.len() != {n} {{\n\
                         return ::core::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple length for {name}::{vname}\"));\n\
                         }}\n\
                         ::core::result::Result::Ok({name}::{vname}({items}))\n}},\n",
                        items = items.join(", ")
                    ));
                }
                Payload::Struct(fields) => {
                    let field_init = gen_named_de(fields);
                    object_arms.push_str(&format!(
                        "{key:?} => {{\n\
                         let m = payload.as_object().ok_or_else(|| \
                         ::serde::Error::type_mismatch(\"object ({name}::{vname})\", payload))?;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n{field_init}}})\n}},\n"
                    ));
                }
            }
        }
        format!(
            "match v {{\n\
             ::serde::Value::String(s) => match s.as_str() {{\n{string_arms}\
             other => ::core::result::Result::Err(::serde::Error::custom(format!(\
             \"unknown {name} variant `{{other}}`\"))),\n}},\n\
             ::serde::Value::Object(outer) if outer.len() == 1 => {{\n\
             let (variant, payload) = outer.iter().next().expect(\"len checked\");\n\
             match variant.as_str() {{\n{object_arms}\
             other => ::core::result::Result::Err(::serde::Error::custom(format!(\
             \"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
             other => ::core::result::Result::Err(::serde::Error::type_mismatch(\
             \"string or single-key object ({name})\", other)),\n}}"
        )
    }
}

// ---------------------------------------------------------------------
// entry points

/// Derive `serde::Serialize` (vendored value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde stand-in derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (vendored value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde stand-in derive: generated Deserialize impl failed to parse")
}
