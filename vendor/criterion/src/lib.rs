//! Offline API-compatible stand-in for `criterion`.
//!
//! Implements the subset of the criterion API used by this workspace's
//! benches (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`). Instead of full
//! statistical analysis, each benchmark is warmed up once and then timed
//! for a small fixed number of iterations; the mean wall-clock time per
//! iteration is printed to stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive so the work is not
    /// optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses a fixed iteration
    /// count rather than a statistical sample size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.criterion.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.elapsed.is_zero() {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!(
            "{}/{id}: {} per iter ({} iters)",
            self.name,
            human(per_iter),
            b.iters
        );
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id.text, f);
        self
    }

    /// Benchmark a closure that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id.text, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: this stand-in exists so benches compile and run,
        // not to produce publication-grade statistics.
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3);
        Criterion { iters }
    }
}

impl Criterion {
    /// Accepted for API compatibility.
    pub fn sample_size(mut self, _n: usize) -> Self {
        self.iters = self.iters.min(10);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            criterion: self,
        };
        let id = id.into();
        g.run_one(id.text, f);
        self
    }
}

/// Group benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        for n in [10usize, 20] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<usize>())
            });
        }
        g.finish();
    }

    #[test]
    fn api_smoke() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function(BenchmarkId::new("top", 1), |b| b.iter(|| 2 + 2));
    }
}
