//! Offline stand-in for `serde` 1.x.
//!
//! Real serde abstracts over *formats* through the `Serializer`/
//! `Deserializer` visitor machinery. This stand-in collapses that design
//! to a single self-describing value tree ([`Value`]): `Serialize` turns
//! a type *into* a `Value`, `Deserialize` reconstructs the type *from*
//! one. The companion `serde_json` crate converts `Value` to and from
//! JSON text, which is the only format the workspace uses.
//!
//! The derive macros (feature `derive`, crate `serde_derive`) generate
//! impls of these traits with serde's standard data model:
//!
//! * structs → objects keyed by field name;
//! * 1-field tuple structs (newtypes) → the inner value, transparently;
//! * n-field tuple structs and tuples → arrays;
//! * enum unit variants → the variant name as a string;
//! * enum data variants → `{"Variant": payload}` (external tagging), or
//!   flattened with a tag field under `#[serde(tag = "...")]`;
//! * `Option` → `null` / the value.
//!
//! Supported attributes: `#[serde(default)]`,
//! `#[serde(skip_serializing_if = "path")]`, `#[serde(tag = "...")]`,
//! `#[serde(rename_all = "snake_case")]`, `#[serde(rename = "...")]`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Number: integers are kept exact, everything else is an `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Value as `u64` if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Value as `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    /// Numeric equality across representations (`1` == `1.0`).
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// Insertion-ordered string-keyed map used for objects.
///
/// Lookup is linear; objects in this workspace have at most a few dozen
/// keys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Create an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (replacing any existing entry for `key`, keeping its slot).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Shared lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Exclusive lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove and return the entry for `key`.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// Self-describing value tree (the serde data model).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// String-keyed object.
    Object(Map),
}

impl Value {
    /// As a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As a `u64`, if an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As an `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As a shared array, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an exclusive array, if an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a shared object, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As an exclusive object, if an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array-index lookup (`None` for non-arrays / out of range).
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Replace with `Null`, returning the previous value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }

    /// One-word name of the variant, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `v["key"]` — `Null` for non-objects and missing keys (serde_json
    /// semantics).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// `v["key"] = x`: auto-vivifies `Null` into an object and inserts
    /// the key if missing (serde_json semantics).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let map = self
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object value with a string key"));
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `v[3]` — `Null` for non-arrays and out-of-range indices.
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<usize> for Value {
    /// `v[3] = x` — panics for non-arrays / out-of-range (like serde_json).
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        self.as_array_mut()
            .unwrap_or_else(|| panic!("cannot index non-array value with an integer"))
            .get_mut(idx)
            .expect("array index out of bounds")
    }
}

macro_rules! impl_value_from {
    ($($t:ty => $e:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { $e(v) }
        }
    )*};
}
impl_value_from!(
    bool => Value::Bool,
    f64 => |v| Value::Number(Number::Float(v)),
    f32 => |v: f32| Value::Number(Number::Float(v as f64)),
    u8 => |v: u8| Value::Number(Number::PosInt(v as u64)),
    u16 => |v: u16| Value::Number(Number::PosInt(v as u64)),
    u32 => |v: u32| Value::Number(Number::PosInt(v as u64)),
    u64 => |v| Value::Number(Number::PosInt(v)),
    usize => |v: usize| Value::Number(Number::PosInt(v as u64)),
    String => Value::String,
);

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::Number(Number::PosInt(v as u64))
        } else {
            Value::Number(Number::NegInt(v))
        }
    }
}

macro_rules! impl_value_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::from(v as i64) }
        }
    )*};
}
impl_value_from_signed!(i8, i16, i32, isize);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

macro_rules! impl_value_eq_prim {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::from_prim(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl Number {
    fn from_prim<T: Into<NumPrim>>(v: T) -> Number {
        match v.into() {
            NumPrim::U(v) => Number::PosInt(v),
            NumPrim::I(v) if v >= 0 => Number::PosInt(v as u64),
            NumPrim::I(v) => Number::NegInt(v),
            NumPrim::F(v) => Number::Float(v),
        }
    }
}

enum NumPrim {
    U(u64),
    I(i64),
    F(f64),
}

macro_rules! impl_numprim {
    ($($t:ty => $v:ident as $as:ty),*) => {$(
        impl From<$t> for NumPrim {
            fn from(v: $t) -> NumPrim { NumPrim::$v(v as $as) }
        }
    )*};
}
impl_numprim!(
    u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64, usize => U as u64,
    i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64, isize => I as i64,
    f32 => F as f64, f64 => F as f64
);

impl_value_eq_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Serialization/deserialization error: a message and an optional path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Type-mismatch helper: `expected X, found Y`.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// Missing required field.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can turn itself into a [`Value`].
pub trait Serialize {
    /// Serialize into the value tree.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    ///
    /// # Errors
    /// [`Error`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization-side namespace (API-compatibility with serde paths).
pub mod de {
    /// Marker for types deserializable without borrowing the input; with
    /// this stand-in's owning data model, that is every `Deserialize`.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::Error;
}

/// Serialization-side namespace (API-compatibility with serde paths).
pub mod ser {
    pub use super::Error;
}

// ---------------------------------------------------------------------
// impls for std types

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::from(*self) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .or_else(|| v.as_u64().and_then(|n| <$t>::try_from(n).ok()));
                n.ok_or_else(|| Error::type_mismatch(stringify!($t), v))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::from(*self) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::type_mismatch("number", v))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::type_mismatch("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::type_mismatch("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // sort for a canonical, deterministic encoding
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::type_mismatch("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::type_mismatch("null", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::type_mismatch("array", v))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected an array of {} elements, found {}", $len, arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple!(
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) of 5;
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5) of 6;
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), Some(3));
    }

    #[test]
    fn nested_round_trip() {
        let orig: Vec<Option<(u32, f64)>> = vec![Some((1, 2.5)), None, Some((3, -0.5))];
        let v = orig.to_value();
        let back: Vec<Option<(u32, f64)>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(orig, back);
    }

    #[test]
    fn ints_from_floats_and_back() {
        // a float-encoded integer must deserialize into integer types
        let v = Value::Number(Number::Float(5.0));
        assert_eq!(u32::from_value(&v).unwrap(), 5);
        // and an int-encoded value into floats
        let v = Value::Number(Number::PosInt(7));
        assert_eq!(f64::from_value(&v).unwrap(), 7.0);
    }

    #[test]
    fn number_equality_is_numeric() {
        assert_eq!(Value::from(1u32), Value::from(1.0));
        assert_ne!(Value::from(1u32), Value::from(1.5));
        assert_eq!(Value::from(-2i64), Value::from(-2.0));
    }

    #[test]
    fn index_semantics() {
        let mut v = Value::Null;
        v["a"] = Value::from(1u32);
        v["b"] = Value::from(vec![1u32, 2, 3]);
        assert_eq!(v["a"], 1u32);
        assert_eq!(v["b"][2], 3u32);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["b"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("x", Value::from(1u32));
        m.insert("y", Value::from(2u32));
        m.insert("x", Value::from(9u32));
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, ["x", "y"]);
        assert_eq!(m.get("x"), Some(&Value::from(9u32)));
    }

    #[test]
    fn out_of_range_ints_error() {
        let v = Value::from(300u32);
        assert!(u8::from_value(&v).is_err());
        let v = Value::from(-1i64);
        assert!(u32::from_value(&v).is_err());
    }
}
