//! Offline stand-in for `crossbeam` 0.8: the `channel` module only.
//!
//! Implements multi-producer/multi-consumer bounded and unbounded FIFO
//! channels on a `Mutex<VecDeque>` + two condvars. Semantics follow
//! crossbeam-channel:
//!
//! * cloning a [`channel::Sender`]/[`channel::Receiver`] adds a peer;
//! * `recv` on an empty channel whose senders are all dropped fails;
//! * `send` to a channel whose receivers are all dropped fails;
//! * a bounded channel blocks `send` (and fails `try_send`) when full —
//!   the backpressure the serving layer relies on.
//!
//! Not a lock-free implementation; throughput is far below real
//! crossbeam but orders of magnitude above the request rates the test
//! suites and the scheduling service generate.

#![forbid(unsafe_code)]

/// MPMC channels (API subset of `crossbeam-channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity bound; `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`]: all receivers were dropped.
    /// Carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers were dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Empty and all senders were dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`].
    pub enum SendTimeoutError<T> {
        /// The channel stayed full for the whole timeout; the unsent
        /// message is returned.
        Timeout(T),
        /// Every receiver has been dropped; the unsent message is
        /// returned.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Empty and all senders were dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("SendTimeoutError::Timeout(..)"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("SendTimeoutError::Disconnected(..)")
                }
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("sending timed out on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    impl<T> std::error::Error for SendTimeoutError<T> {}

    impl<T> SendTimeoutError<T> {
        /// Recover the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                SendTimeoutError::Timeout(m) | SendTimeoutError::Disconnected(m) => m,
            }
        }
    }

    impl<T> TrySendError<T> {
        /// Recover the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
            }
        }

        /// Whether the failure was a full channel.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Whether the failure was a disconnected channel.
        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded FIFO channel with capacity `cap`.
    ///
    /// `cap == 0` is rendezvous in crossbeam; this stand-in does not
    /// implement rendezvous and panics instead of deadlocking silently.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "zero-capacity (rendezvous) channels are not supported"
        );
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while the channel is full.
        ///
        /// # Errors
        /// [`SendError`] if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.0.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .0
                            .not_full
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking.
        ///
        /// # Errors
        /// [`TrySendError::Full`] when at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.0.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Send, blocking at most `timeout` while the channel is full.
        ///
        /// # Errors
        /// [`SendTimeoutError::Timeout`] when still full at the deadline,
        /// [`SendTimeoutError::Disconnected`] when every receiver is
        /// gone; both return the unsent message.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                match self.0.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(SendTimeoutError::Timeout(msg));
                        }
                        let (g, _) = self
                            .0
                            .not_full
                            .wait_timeout(st, deadline - now)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        st = g;
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty.
        ///
        /// # Errors
        /// [`RecvError`] once the channel is empty and every sender has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive, blocking at most `timeout`.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .0
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterate until the channel is empty *and* disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // wake blocked receivers so they observe disconnection
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // wake blocked senders so they observe disconnection
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn mpmc_consumes_each_message_once() {
            let (tx, rx) = unbounded::<usize>();
            let n = 10_000;
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.iter().count())
                })
                .collect();
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, n);
        }

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(tx.try_send(3).unwrap_err().is_full());
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert!(tx.try_send(4).unwrap_err().is_disconnected());
        }

        #[test]
        fn bounded_send_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
