//! Offline stand-in for `parking_lot` 0.12.
//!
//! Wraps the `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s, and a poisoned lock (a thread panicked while holding it)
//! is simply entered anyway — parking_lot semantics.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Non-poisoning mutex.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's API consumes and returns the guard; emulate parking_lot's
        // in-place signature by round-tripping through a temporary.
        take_mut(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `timeout` elapses; returns true on timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        timed_out
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Replace `*slot` through a consuming closure. The closure cannot panic
/// in our uses (a poisoned wait is unwrapped into the inner guard), but
/// abort on panic anyway rather than leave `slot` dangling.
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnDrop;
    // SAFETY: `slot` is exclusively borrowed; the value is read out and a
    // replacement is written back before the borrow ends. If `f` were to
    // panic the bomb aborts the process, so a double-drop cannot happen.
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
