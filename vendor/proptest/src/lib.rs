//! Offline API-compatible stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `collection::vec`, `sample::subsequence`, `bool::ANY`,
//! [`ProptestConfig`], and the `proptest!`/`prop_assert*` macros.
//!
//! Cases are generated deterministically from a per-test seed (derived from
//! the test's module path and name) so failures are reproducible run-to-run.
//! There is no shrinking: a failing case reports its case index and message.

#![forbid(unsafe_code)]

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic RNG used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (test name) via FNV-1a.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config and failure reporting
// ---------------------------------------------------------------------------

/// Per-block configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` family; carries the rendered message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Result type produced by a single generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Inclusive bounds on a generated collection length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length lies in `size` (a `usize`, `a..b`, or
    /// `a..=b`), with each element drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy returned by [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    /// Generate order-preserving subsequences of `values` whose length lies
    /// in `size` (clamped to the number of available values).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let k = self.size.sample(rng).min(n);
            // Partial Fisher-Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.below((n - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    /// Namespaced access mirroring real proptest's prelude.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert a condition inside a proptest body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}; {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`); {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+),
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($a), stringify!($b), a,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`); {}",
                stringify!($a), stringify!($b), a, format!($($fmt)+),
            )));
        }
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($param:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::TestRng::for_test(test_name);
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let ($($param,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {test_name}: case {}/{} failed: {e}",
                        case + 1,
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let u = crate::Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&u));
            let i = crate::Strategy::sample(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&i));
            let f = crate::Strategy::sample(&(2.0f64..4.0), &mut rng);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::TestRng::for_test("subseq");
        let base: Vec<u32> = (0..20).collect();
        for _ in 0..200 {
            let s = crate::Strategy::sample(
                &crate::sample::subsequence(base.clone(), 0..=10),
                &mut rng,
            );
            assert!(s.len() <= 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and multi-line parameter lists must parse.
        #[test]
        fn macro_end_to_end(
            n in 1usize..20,
            xs in proptest::collection::vec(0.0f64..10.0, 0..8),
            flag in proptest::bool::ANY,
        ) {
            prop_assert!((1..20).contains(&n));
            prop_assert!(xs.len() < 8);
            prop_assert!(flag || xs.len() < 8);
            prop_assert_eq!(n.min(19), n, "clamp with {} elems", xs.len());
        }

        #[test]
        fn flat_map_composes(v in (1usize..5).prop_flat_map(|n| {
            proptest::collection::vec(0u32..100, n)
        }).prop_map(|xs| xs.len())) {
            prop_assert!((1..5).contains(&v));
        }
    }
}
